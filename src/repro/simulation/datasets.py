"""End-to-end dataset construction: world → archive → restore → lifetimes.

:func:`build_datasets` runs the whole pipeline of the paper's Fig. 1:
the simulated world substitutes for the RIR FTP sites and the BGP
collectors, the pitfall injector corrupts the archive the way reality
does, the §3.1 restoration undoes it, and the §4 builders emit the two
lifetime datasets.  The returned bundle carries every intermediate
artifact plus the ground truth, so analyses can be validated and not
just run.

The run itself goes through the :mod:`repro.runtime` subsystem: an
executor fans the parallel stages out (per-registry restoration,
per-ASN-chunk lifetime inference), a :class:`PipelineStats` records
what each stage cost, and an :class:`ArtifactCache` lets an identical
configuration skip the rebuild entirely — the pipeline equivalent of
serving historical queries from precomputed state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..asn.numbers import ASN
from ..core.joint import JointAnalysis
from ..lifetimes.admin import build_admin_lifetimes
from ..lifetimes.bgp import build_bgp_lifetimes
from ..lifetimes.records import AdminLifetime, BgpLifetime
from ..restoration.pipeline import RestoredDelegations, restore_archive
from ..restoration.report import RestorationReport
from ..rir.archive import DelegationArchive
from ..rir.pitfalls import InjectedDefect, PitfallConfig, PitfallInjector
from ..runtime.cache import (
    ArtifactCache,
    dumps_with_gc_paused,
    loads_with_gc_paused,
)
from ..runtime.executor import ExecutorSpec, resolve_executor
from ..runtime.profiling import PipelineStats
from .config import WorldConfig, tiny
from .world import World, WorldSimulator

__all__ = ["DatasetBundle", "build_datasets"]

#: The independently cacheable components of a bundle, in build order.
_BUNDLE_PARTS = (
    "world",
    "archive",
    "injected_defects",
    "restored",
    "restoration_report",
    "admin_lives",
    "op_lives",
)

#: Format tag of partitioned cache entries (see ``_to_parts``).
_PARTS_FORMAT = "dataset-bundle-parts/v1"


@dataclass
class DatasetBundle:
    """Everything one experiment run produces.

    Bundles loaded from the artifact cache are *partitioned*: each
    component stays a pickled blob until first attribute access (see
    :meth:`_from_parts`), so a warm cache hit costs file I/O plus only
    the components the caller actually touches — an analysis reading
    ``admin_lives``/``op_lives`` never pays for decoding the full
    simulated world.  A decoded component is indistinguishable from an
    eagerly built one (same pickle round-trip), though components no
    longer share object identity across part boundaries (``world`` and
    ``archive`` hold equal-but-distinct registry objects).
    """

    world: World
    archive: DelegationArchive
    injected_defects: List[InjectedDefect]
    restored: RestoredDelegations
    restoration_report: RestorationReport
    admin_lives: Dict[ASN, List[AdminLifetime]]
    op_lives: Dict[ASN, List[BgpLifetime]]
    joint: JointAnalysis = field(init=False)

    def __post_init__(self) -> None:
        self.joint = JointAnalysis(
            admin_lives=self.admin_lives,
            op_lives=self.op_lives,
            end_day=self.world.end_day,
            topology=self.world.topology,
            siblings=self.world.orgs.sibling_map(),
            truth=self.world.events,
        )

    def __getattr__(self, name: str):
        # Reached only for attributes missing from the instance: on a
        # partitioned bundle these are the not-yet-decoded parts and
        # the derived joint analysis.
        parts = object.__getattribute__(self, "__dict__").get("_parts")
        if parts is not None:
            blob = parts.pop(name, None)
            if blob is not None:
                value = loads_with_gc_paused(blob)
                setattr(self, name, value)
                return value
            if name == "joint":
                self.__post_init__()
                return self.joint
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _to_parts(self) -> Dict[str, bytes]:
        """Pickle each component separately (the cache-entry payload)."""
        return {
            name: dumps_with_gc_paused(getattr(self, name))
            for name in _BUNDLE_PARTS
        }

    @classmethod
    def _from_parts(cls, parts: Dict[str, bytes]) -> "DatasetBundle":
        """Wrap pickled components without decoding any of them yet."""
        bundle = cls.__new__(cls)
        bundle.__dict__["_parts"] = dict(parts)
        return bundle

    def registry_of(self) -> Dict[ASN, str]:
        """ASN → final registry (for the per-RIR tables)."""
        return {
            asn: lives[-1].registry
            for asn, lives in self.admin_lives.items()
            if lives
        }

    def rebuild_op_lives(
        self, *, timeout: int, min_peers: int = 2
    ) -> Dict[ASN, List[BgpLifetime]]:
        """Re-segment operational lifetimes under different parameters
        (Table 5 / the visibility ablation) without re-simulating."""
        return build_bgp_lifetimes(
            self.world.activities,
            timeout=timeout,
            min_peers=min_peers,
            end_day=self.world.end_day,
        )


def _bundle_cache_key(
    cache: ArtifactCache,
    config: WorldConfig,
    *,
    inject_pitfalls: bool,
    pitfall_config: Optional[PitfallConfig],
    timeout: int,
    min_peers: int,
    scenario_key: Any = None,
) -> str:
    """The content address of one bundle: every input that shapes it.

    ``scenario_key`` is the compiled scenario's fingerprint (``None``
    for plain-config runs): two different scenarios never share an
    entry even if they compile to the same config, and repeat runs of
    one scenario always hit.
    """
    return cache.key_for(
        artifact="dataset-bundle",
        config=config,
        inject_pitfalls=inject_pitfalls,
        pitfall_config=(
            (pitfall_config if pitfall_config is not None else PitfallConfig())
            if inject_pitfalls
            else None
        ),
        timeout=timeout,
        min_peers=min_peers,
        scenario=scenario_key,
    )


def build_datasets(
    config: Optional[WorldConfig] = None,
    *,
    inject_pitfalls: bool = True,
    pitfall_config: Optional[PitfallConfig] = None,
    timeout: int = 30,
    min_peers: int = 2,
    jobs: Optional[int] = None,
    executor: ExecutorSpec = None,
    cache: Union[ArtifactCache, str, Path, None] = None,
    cache_verify: str = "sha256",
    stats: Optional[PipelineStats] = None,
    restoration_engine: str = "table",
    restoration_table: Union[str, Path, None] = None,
    scenario_key: Any = None,
) -> DatasetBundle:
    """Run the full pipeline for one world configuration.

    Parameters
    ----------
    jobs:
        Shorthand executor spec: ``None``/``0``/``1`` runs serially,
        ``N >= 2`` fans parallel stages out over ``N`` worker
        processes.  Ignored when ``executor`` is given.
    executor:
        An explicit :class:`~repro.runtime.executor.PipelineExecutor`
        (or spec string) to run the parallel stages on.  Output is
        bit-identical across backends.
    cache:
        An :class:`~repro.runtime.cache.ArtifactCache` (or a cache
        directory path).  A warm hit skips simulation, injection,
        restoration, and lifetime inference entirely and returns a
        partitioned bundle whose components are decoded on first
        access; a finished build is stored for the next caller.
    cache_verify:
        Integrity mode used when ``cache`` is given as a path:
        ``"sha256"`` (default) checks loaded entries against their
        sidecar manifests, ``"off"`` trusts unpickling alone.  Ignored
        for an already-constructed :class:`ArtifactCache`.
    stats:
        Optional :class:`~repro.runtime.profiling.PipelineStats`
        collecting per-stage wall times, item counts, and the
        runtime's degradation events (quarantines, worker retries,
        serial fallback).
    restoration_engine:
        ``"table"`` (default) restores off the packed
        ``delegation-table/v1`` container (whole-array view assembly,
        ``(path, registry)`` fan-out descriptors); ``"object"`` is the
        reference dict-of-``Stint`` implementation.  Byte-identical by
        contract, and deliberately outside the bundle cache key so
        either engine serves the other's hit.
    restoration_table:
        Optional container file path handed to the table engine
        (reused when present, written on a cold encode).
    scenario_key:
        Fingerprint of the scenario this config was compiled from
        (see :mod:`repro.scenario`), folded into the bundle cache key;
        ``None`` for plain-config runs.
    """
    if config is None:
        config = tiny()
    if cache is not None and not isinstance(cache, ArtifactCache):
        cache = ArtifactCache(cache, verify=cache_verify)
    stats = stats if stats is not None else PipelineStats()

    key: Optional[str] = None
    if cache is not None:
        key = _bundle_cache_key(
            cache,
            config,
            inject_pitfalls=inject_pitfalls,
            pitfall_config=pitfall_config,
            timeout=timeout,
            min_peers=min_peers,
            scenario_key=scenario_key,
        )
        with stats.stage("cache:lookup", component="cache") as timing:
            artifact = cache.load(key)
        stats.drain_events_from(cache)
        if artifact is not None:
            timing.items = 1
            timing.set_attr("cache", "hit")
            if (
                isinstance(artifact, dict)
                and artifact.get("format") == _PARTS_FORMAT
            ):
                return DatasetBundle._from_parts(artifact["parts"])
            return artifact
        timing.set_attr("cache", "miss")

    spec = executor if executor is not None else jobs
    executor = resolve_executor(spec)
    owns_executor = executor is not spec
    executor.instrument(stats.tracer, stats.metrics)
    stats.backend = executor.name
    try:
        bundle = _build(
            config, executor, stats,
            inject_pitfalls=inject_pitfalls, pitfall_config=pitfall_config,
            timeout=timeout, min_peers=min_peers,
            restoration_engine=restoration_engine,
            restoration_table=restoration_table,
            cache=cache if isinstance(cache, ArtifactCache) else None,
        )
    finally:
        stats.drain_events_from(executor)
        if getattr(executor, "degraded", False):
            stats.backend = f"{executor.name}/degraded-serial"
        if owns_executor:
            executor.close()

    if cache is not None and key is not None:
        with stats.stage("cache:store", component="cache"):
            cache.store(
                key, {"format": _PARTS_FORMAT, "parts": bundle._to_parts()}
            )
        stats.drain_events_from(cache)
    return bundle


def _build(
    config: WorldConfig,
    executor,
    stats: PipelineStats,
    *,
    inject_pitfalls: bool,
    pitfall_config: Optional[PitfallConfig],
    timeout: int,
    min_peers: int,
    restoration_engine: str = "object",
    restoration_table: Union[str, Path, None] = None,
    cache: Optional[ArtifactCache] = None,
) -> DatasetBundle:
    """The uncached pipeline body (world → archive → restore → lifetimes)."""
    with stats.stage("simulate", component="simulation") as timing:
        world = WorldSimulator(config).run()
        timing.items = len(world.lives)

    with stats.stage("archive", component="rir") as timing:
        clean = DelegationArchive(world.registries, config.end_day)
        windows = {w.source: (w.first_day, w.last_day) for w in clean.sources()}
        defects: List[InjectedDefect] = []
        if inject_pitfalls:
            injector = PitfallInjector(
                world.registries,
                config.end_day,
                seed=config.seed + 6,
                config=pitfall_config if pitfall_config is not None else PitfallConfig(),
            )
            overlay = injector.inject_all(windows, world.transfers)
            defects = injector.truth
            archive = DelegationArchive(world.registries, config.end_day, overlay)
        else:
            archive = clean
        timing.items = len(defects)

    restored, report = restore_archive(
        archive,
        erx_reference=world.erx_reference,
        ledger=world.ledger,
        executor=executor,
        stats=stats,
        engine=restoration_engine,
        cache=cache,
        table_path=restoration_table,
        # the archive-determining inputs; timeout/min_peers shape only
        # the BGP half, so one container serves every threshold
        cache_key_parts={
            "config": config,
            "inject_pitfalls": inject_pitfalls,
            "pitfall_config": (
                (pitfall_config if pitfall_config is not None else PitfallConfig())
                if inject_pitfalls
                else None
            ),
        },
    )

    with stats.stage("admin-lifetimes", component="lifetimes") as timing:
        admin_lives = build_admin_lifetimes(restored, executor=executor)
        timing.items = len(admin_lives)
    with stats.stage("bgp-lifetimes", component="lifetimes") as timing:
        op_lives = build_bgp_lifetimes(
            world.activities, timeout=timeout, min_peers=min_peers,
            end_day=config.end_day, executor=executor,
        )
        timing.items = len(op_lives)

    with stats.stage("assemble", component="pipeline"):
        bundle = DatasetBundle(
            world=world,
            archive=archive,
            injected_defects=defects,
            restored=restored,
            restoration_report=report,
            admin_lives=admin_lives,
            op_lives=op_lives,
        )
    return bundle
