"""Per-RIR allocation volumes and lifetime-length distributions.

The yearly birth volumes below (at scale 1.0) are read off the paper's
Fig. 4/10/11: RIPE NCC grows fastest from the very start of the window
and overtakes ARIN; ARIN's intake declines slowly; APNIC and LACNIC
explode around 2014; AfriNIC stays an order of magnitude smaller.  The
death model reproduces the §5 finding that a noticeable share of lives
end within a year (LACNIC 13% … ARIN 6%) while most survive for many
years or to the end of the window.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional

from ..timeline.dates import Day, year_of

__all__ = [
    "yearly_births",
    "daily_birth_rate",
    "poisson",
    "draw_lifetime_days",
    "SHORT_LIFE_SHARE",
]

#: New allocations per year per registry at scale 1.0 (paper-shaped).
_YEARLY_BIRTHS: Dict[str, Dict[int, int]] = {
    "ripencc": {
        2003: 1800, 2005: 2300, 2007: 2800, 2009: 3100, 2011: 3400,
        2013: 3300, 2015: 2800, 2017: 2500, 2019: 2300,
    },
    "arin": {
        2003: 2300, 2005: 2200, 2007: 2100, 2009: 1900, 2011: 1700,
        2013: 1500, 2015: 1400, 2017: 1300, 2019: 1200,
    },
    "apnic": {
        2003: 550, 2005: 650, 2007: 750, 2009: 850, 2011: 1000,
        2013: 1300, 2015: 1900, 2017: 2000, 2019: 1900,
    },
    "lacnic": {
        2003: 260, 2005: 320, 2007: 420, 2009: 520, 2011: 700,
        2013: 1100, 2015: 1900, 2017: 2000, 2019: 1800,
    },
    "afrinic": {
        2003: 0, 2005: 90, 2007: 120, 2009: 150, 2011: 190,
        2013: 230, 2015: 270, 2017: 300, 2019: 310,
    },
}

#: Share of lives lasting under a year, per registry (§5 / Fig. 5).
SHORT_LIFE_SHARE: Dict[str, float] = {
    "lacnic": 0.13,
    "apnic": 0.11,
    "afrinic": 0.09,
    "ripencc": 0.08,
    "arin": 0.06,
}

#: Share of lives ending after 1-12 years.  ARIN's out-of-compliance
#: reclaims (App. B) make it the registry with the most mid-life
#: deaths, feeding its outsized re-allocation rate (Table 2).
MID_LIFE_DEATH_SHARE: Dict[str, float] = {
    "lacnic": 0.18,
    "apnic": 0.20,
    "afrinic": 0.18,
    "ripencc": 0.26,
    "arin": 0.34,
}


def yearly_births(registry: str, year: int) -> int:
    """Paper-scale new allocations for one registry-year."""
    table = _YEARLY_BIRTHS[registry]
    best = 0
    for anchor_year in sorted(table):
        if year >= anchor_year:
            best = table[anchor_year]
    return best


def daily_birth_rate(registry: str, day: Day, scale: float) -> float:
    """Expected allocations on one day (Poisson intensity)."""
    return yearly_births(registry, year_of(day)) * scale / 365.25


def poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler — adequate for the small intensities here."""
    if lam <= 0:
        return 0
    limit = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def draw_lifetime_days(
    registry: str, rng: random.Random, *, days_remaining: int
) -> Optional[int]:
    """Planned administrative lifetime length, or ``None`` for a life
    intended to outlast the observation window.

    A mixture: ``SHORT_LIFE_SHARE`` of lives die within a year (30-365
    days, uniform), a further slice dies after 1-12 years (exponential
    flavor), and the remainder never ends inside the window.  Lives
    whose drawn length exceeds the remaining window are treated as
    open-ended, which naturally right-censors late cohorts exactly as
    the paper's Fig. 14 shows.
    """
    roll = rng.random()
    short_share = SHORT_LIFE_SHARE[registry]
    if roll < short_share:
        length = rng.randint(30, 365)
    elif roll < short_share + MID_LIFE_DEATH_SHARE[registry]:
        length = int(rng.expovariate(1.0 / (365 * 4))) + 366
    else:
        return None
    if length >= days_remaining:
        return None
    return length
