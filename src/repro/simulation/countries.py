"""Country assignment per registry, with era-dependent weights.

Appendix A shows strong country dynamics inside each region: Brazil
dominating LACNIC and growing (64% → 70%+ of allocations), India and
Indonesia overtaking Australia/China/Japan inside APNIC between 2010
and 2021 (Table 4), the US holding >92% of ARIN, South Africa leading
AfriNIC, and Russia leading RIPE NCC with ~17%.  The weights below are
piecewise-by-era so the *cumulative* shares land near the paper's
snapshots.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

__all__ = ["country_for", "ERA_WEIGHTS"]

#: (era start year, [(country, weight), ...]) per registry.  Eras apply
#: from their start year until the next era's start.
ERA_WEIGHTS: Dict[str, List[Tuple[int, List[Tuple[str, float]]]]] = {
    "apnic": [
        (1990, [("AU", 0.20), ("KR", 0.17), ("JP", 0.16), ("CN", 0.08),
                ("ID", 0.06), ("IN", 0.04), ("HK", 0.06), ("TW", 0.06),
                ("SG", 0.05), ("NZ", 0.04), ("TH", 0.04), ("MY", 0.04)]),
        (2010, [("AU", 0.15), ("CN", 0.13), ("IN", 0.13), ("JP", 0.08),
                ("ID", 0.11), ("KR", 0.06), ("HK", 0.07), ("TW", 0.04),
                ("SG", 0.06), ("NZ", 0.04), ("TH", 0.05), ("MY", 0.04)]),
        (2015, [("IN", 0.25), ("ID", 0.18), ("AU", 0.11), ("CN", 0.09),
                ("JP", 0.03), ("KR", 0.03), ("HK", 0.07), ("TW", 0.03),
                ("SG", 0.06), ("NZ", 0.04), ("TH", 0.05), ("MY", 0.04)]),
    ],
    "arin": [
        (1990, [("US", 0.92), ("CA", 0.06), ("JM", 0.01), ("BS", 0.01)]),
    ],
    "lacnic": [
        (1990, [("BR", 0.62), ("AR", 0.11), ("MX", 0.07), ("CL", 0.06),
                ("CO", 0.06), ("PE", 0.04), ("EC", 0.04)]),
        (2014, [("BR", 0.75), ("AR", 0.08), ("MX", 0.04), ("CL", 0.04),
                ("CO", 0.04), ("PE", 0.03), ("EC", 0.02)]),
    ],
    "afrinic": [
        (1990, [("ZA", 0.33), ("NG", 0.12), ("KE", 0.10), ("EG", 0.08),
                ("TZ", 0.06), ("GH", 0.06), ("MU", 0.05), ("AO", 0.05),
                ("MA", 0.05), ("TN", 0.05), ("UG", 0.05)]),
    ],
    "ripencc": [
        (1990, [("RU", 0.17), ("GB", 0.09), ("DE", 0.09), ("FR", 0.05),
                ("UA", 0.06), ("NL", 0.05), ("IT", 0.05), ("PL", 0.05),
                ("SE", 0.04), ("ES", 0.04), ("CH", 0.04), ("TR", 0.04),
                ("CZ", 0.03), ("RO", 0.03), ("AT", 0.03), ("NO", 0.02)]),
    ],
}


def _weights_for(registry: str, year: int) -> Sequence[Tuple[str, float]]:
    eras = ERA_WEIGHTS[registry]
    chosen = eras[0][1]
    for start_year, weights in eras:
        if year >= start_year:
            chosen = weights
    return chosen


def country_for(registry: str, year: int, rng: random.Random) -> str:
    """Draw a country code for a new allocation.

    Residual weight (the listed weights sum below 1) goes to a pool of
    small "other" countries, deterministically derived from the draw.
    """
    weights = _weights_for(registry, year)
    roll = rng.random()
    cumulative = 0.0
    for cc, weight in weights:
        cumulative += weight
        if roll < cumulative:
            return cc
    # long tail of small countries
    return f"{registry[:1].upper()}{rng.randint(0, 9)}"
