"""World-simulation configuration.

A :class:`WorldConfig` fixes everything about a synthetic 17-year
world: the observation window, the scale factor (fraction of the
paper's real-world allocation volumes), behavioral rates, and anomaly
counts.  Two presets cover the common cases: :func:`tiny` for unit and
integration tests (seconds), :func:`bench` for the benchmark harness
(tens of seconds, large enough for distribution shapes to stabilize).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Tuple

from ..timeline.dates import Day, from_iso

__all__ = ["UnknownConfigKeyError", "WorldConfig", "tiny", "bench"]

#: Topology construction recipes understood by the world simulator
#: (see :mod:`repro.bgp.topology`).
TOPOLOGY_RECIPES = ("transit-hierarchy", "ixp-heavy", "regional")


class UnknownConfigKeyError(TypeError):
    """A mapping handed to :meth:`WorldConfig.from_dict` carried keys
    that are not ``WorldConfig`` fields.

    Scenario files and manifest fingerprints are the usual sources;
    silently dropping their unknown keys would turn typos into
    mysteriously-default worlds, so the error names every bad key.
    """

    def __init__(self, keys: Tuple[str, ...]) -> None:
        self.keys = tuple(sorted(keys))
        names = ", ".join(repr(k) for k in self.keys)
        super().__init__(f"unknown WorldConfig key(s): {names}")


@dataclass(frozen=True)
class WorldConfig:
    """All knobs of the world simulator.

    ``scale`` multiplies the paper-scale allocation volumes (~107k
    lifetimes at 1.0).  Scale 0.05 yields roughly 5k lifetimes — large
    enough for every distribution the benchmarks reproduce.
    """

    seed: int = 0
    #: First simulated day (just before the first delegation files).
    start_day: Day = from_iso("2003-10-01")
    #: Last simulated day (the paper's cut-off).
    end_day: Day = from_iso("2021-03-01")
    #: Fraction of paper-scale allocation volume.
    scale: float = 0.05

    # -- administrative behavior ------------------------------------------
    #: Number of pre-window ("historical") allocations at scale 1.0,
    #: split across ARIN/RIPE/APNIC; reg dates reach back to 1992.
    #: ARIN (as InterNIC's heir) holds the lion's share, so that after
    #: the ERX transfers it still leads RIPE NCC by the ~10k ASNs the
    #: paper observes in 2004 (§5).
    historical_allocations: int = 30_000
    #: ERX transfers out of ARIN at scale 1.0 (paper: 5,026 + 204).
    erx_transfers: int = 5_230
    #: Ordinary inter-RIR transfers at scale 1.0 (paper: 342).
    inter_rir_transfers: int = 342
    #: Probability a new allocation joins an existing organization.
    sibling_probability: float = 0.15
    #: Hoarder organizations (many ASNs, mostly unused) at scale 1.0.
    hoarder_orgs: int = 40
    #: ASNs per hoarder organization (min, max).
    hoarder_asns: Tuple[int, int] = (15, 120)
    #: Share of ended lives whose ASN is later reported with a
    #: registration-date administrative correction.
    regdate_correction_rate: float = 0.002
    #: APNIC NIR block allocations per year (count, block size range).
    nir_blocks_per_year: float = 2.0
    nir_block_size: Tuple[int, int] = (4, 16)
    #: Share of post-default 32-bit allocations that fail operationally:
    #: the ASN is returned within a month, never used, and the same
    #: organization receives a 16-bit ASN shortly after (§6.3: 86% of
    #: ARIN's short-lived unused 32-bit allocations show this pattern).
    failed_32bit_rate: float = 0.025

    # -- operational behavior ----------------------------------------------
    #: Baseline probability an allocated ASN never shows up in BGP.
    unused_probability: float = 0.12
    #: Per-country multipliers on the unused probability (China's
    #: visibility gap, Russia's unusually full usage, France's sibling
    #: hoarding — §6.3).
    unused_country_multiplier: Dict[str, float] = field(
        default_factory=lambda: {"CN": 4.2, "RU": 0.5, "FR": 1.8}
    )
    #: Probability an unused-profile hoarder ASN is used anyway.
    hoarder_used_probability: float = 0.3
    #: Median days from allocation to first BGP activity (per §6.1.1,
    #: "greater than a month for all RIRs").
    median_start_delay: int = 38
    #: Expected intra-life activity gaps per 800 allocated days.  Kept
    #: low so that ~84% of complete-overlap lives hold a single
    #: operational life (§6.1.1) — the Fig. 3 gap CDF still lands near
    #: 70% at 30 days because conference networks contribute many long
    #: gaps.
    gap_rate_per_800_days: float = 0.25
    #: Share of intra-life gaps that stay within 30 days (Fig. 3 knee).
    short_gap_share: float = 0.80
    #: Share of ended lives with dangling announcements (§6.2; tuned so
    #: dangling is ~64% of the partial-overlap category as in the paper).
    dangling_rate: float = 0.075
    #: Share of lives whose BGP activity starts days before the
    #: allocation is published (§6.2 late allocations).
    early_start_rate: float = 0.010
    #: Share of ended lives with a detached "ghost burst" of activity
    #: well after deallocation (stuck routes / stale configs) — the
    #: §6.4 once-allocated-outside population.
    ghost_burst_rate: float = 0.018
    #: Share of ASNs with spurious single-peer observations.
    spurious_rate: float = 0.01
    #: Share of active ASNs with conference-network style periodic
    #: activity (>10 operational lives — §6.1.1 sporadic use).
    sporadic_rate: float = 0.003

    # -- anomalies (absolute counts at scale 1.0) ---------------------------
    dormant_squat_events: int = 60
    post_dealloc_squat_events: int = 9
    fat_finger_prepend_events: int = 196
    fat_finger_digit_events: int = 62
    internal_leak_events: int = 25
    #: Unexplained never-allocated origins (the bulk of the paper's 868).
    noise_origin_events: int = 585

    # -- infrastructure ------------------------------------------------------
    routeviews_collectors: int = 3
    ris_collectors: int = 3
    peers_per_collector: int = 6

    # -- topology recipe -----------------------------------------------------
    #: How the AS graph is wired (see ``repro.bgp.topology``):
    #: ``transit-hierarchy`` is the classic three-tier Internet,
    #: ``ixp-heavy`` a flat exchange-dominated mesh, ``regional`` a set
    #: of loosely-interconnected regional islands.
    topology_recipe: str = "transit-hierarchy"
    #: Tier-1 clique size (``transit-hierarchy``/``ixp-heavy``) or
    #: hub count per region (``regional``).
    tier1_count: int = 8
    #: Fraction of ASes acting as mid-tier transit providers.
    transit_share: float = 0.12
    #: Lateral peering probability between transits / IXP co-members.
    peering_prob: float = 0.08
    #: Probability a stub multi-homes to a second provider.
    stub_extra_provider_prob: float = 0.35
    #: Internet exchanges in the ``ixp-heavy`` recipe.
    ixp_count: int = 4
    #: Regional islands in the ``regional`` recipe.
    regional_clusters: int = 4

    # -- regional growth -----------------------------------------------------
    #: Per-registry multipliers on the paper-shaped daily birth rates
    #: (missing registries default to 1.0) — the lever for regional
    #: scenarios that concentrate growth in one part of the world.
    birth_rate_multiplier: Dict[str, float] = field(default_factory=dict)

    def scaled(self, value: float) -> int:
        """Apply the scale factor, keeping at least 1 for positive input."""
        if value <= 0:
            return 0
        return max(1, round(value * self.scale))

    def with_overrides(self, **changes) -> "WorldConfig":
        return replace(self, **changes)

    def __post_init__(self) -> None:
        if self.end_day <= self.start_day:
            raise ValueError("end_day must follow start_day")
        if not 0 < self.scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        if self.topology_recipe not in TOPOLOGY_RECIPES:
            raise ValueError(
                f"unknown topology recipe {self.topology_recipe!r} "
                f"(expected one of {', '.join(TOPOLOGY_RECIPES)})"
            )
        if self.tier1_count < 1:
            raise ValueError("tier1_count must be positive")
        if self.ixp_count < 1:
            raise ValueError("ixp_count must be positive")
        if self.regional_clusters < 1:
            raise ValueError("regional_clusters must be positive")
        if not 0.0 < self.transit_share <= 1.0:
            raise ValueError("transit_share must be in (0, 1]")
        for rate in self.birth_rate_multiplier.values():
            if rate < 0:
                raise ValueError("birth_rate_multiplier values must be >= 0")

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "WorldConfig":
        """Build a config from a mapping, rejecting unknown keys.

        This is the one sanctioned dict → :class:`WorldConfig` path:
        scenario compilation and manifest-fingerprint reconstruction
        both go through it.  A ``__class__`` marker (as emitted by the
        cache fingerprinter) is accepted when it names this class;
        every other unexpected key raises
        :class:`UnknownConfigKeyError` naming the offenders.  List
        values destined for tuple-typed fields are coerced back, so
        JSON round-trips are lossless.
        """
        known = {f.name: f for f in dataclasses.fields(cls)}
        tuple_fields = {"hoarder_asns", "nir_block_size"}
        kwargs: Dict[str, Any] = {}
        unknown = []
        for key, value in mapping.items():
            if key == "__class__":
                if value != cls.__name__:
                    raise UnknownConfigKeyError((f"__class__={value!r}",))
                continue
            if key not in known:
                unknown.append(key)
                continue
            if key in tuple_fields and isinstance(value, list):
                value = tuple(value)
            kwargs[key] = value
        if unknown:
            raise UnknownConfigKeyError(tuple(unknown))
        return cls(**kwargs)


def tiny(seed: int = 0) -> WorldConfig:
    """A minimal world for tests: ~600 lifetimes, builds in ~a second."""
    return WorldConfig(seed=seed, scale=0.006)


def bench(seed: int = 0) -> WorldConfig:
    """The benchmark world: ~6k lifetimes, stable distribution shapes."""
    return WorldConfig(seed=seed, scale=0.06)
