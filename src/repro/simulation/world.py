"""The world simulator: 17 years of registries and BGP, end to end.

:class:`WorldSimulator` drives the five registry state machines day by
day (allocations following the per-RIR growth curves, deallocations,
quarantines and returns, ERX and ordinary inter-RIR transfers, APNIC
NIR blocks, date corrections), then materializes operational behavior
for every true administrative life and plants the §6 anomaly events.

The resulting :class:`World` is the complete ground truth; the dataset
builder (:mod:`repro.simulation.datasets`) layers the delegation-file
archive, defect injection, restoration, and lifetime inference on top.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..asn.blocks import IanaLedger
from ..asn.numbers import ASN, digit_count
from ..bgp.anomalies import AnomalyEvent
from ..bgp.collector import Collector, build_collectors
from ..bgp.stream import Announcement
from ..bgp.topology import AsTopology, build_topology
from ..lifetimes.bgp import OperationalActivity
from ..rir.model import RIR_NAMES
from ..rir.pitfalls import TransferRecord
from ..rir.policies import default_policy
from ..rir.registry import Registry, RegistryError
from ..timeline.dates import Day, from_iso, year_of
from ..timeline.intervals import Interval, IntervalSet
from .anomalies import AnomalyPlanner, DormantTarget
from .behavior import BehaviorModel, LifeBehavior, Profile
from .config import WorldConfig
from .countries import country_for
from .growth import daily_birth_rate, draw_lifetime_days, poisson
from .organizations import Organization, OrgDirectory
from .prefixes import PrefixPlan

__all__ = ["TrueLife", "World", "WorldSimulator", "simulate"]


@dataclass
class TrueLife:
    """Ground truth for one administrative lifetime."""

    asn: ASN
    registries: List[str]
    org_id: str
    cc: str
    reg_date: Day
    start: Day
    end: Optional[Day]  # last delegated day; None = open at window end
    via_nir: bool = False
    hoarder: bool = False
    conference: bool = False
    erx: bool = False
    #: A failed 32-bit deployment (§6.3): returned quickly, never used,
    #: and followed by a 16-bit allocation to the same organization.
    failed_32bit: bool = False
    behavior: Optional[LifeBehavior] = None

    @property
    def registry(self) -> str:
        return self.registries[-1]

    def duration(self, window_end: Day) -> int:
        end = self.end if self.end is not None else window_end
        return end - self.start + 1


@dataclass
class World:
    """Everything the simulation produced (the ground truth)."""

    config: WorldConfig
    ledger: IanaLedger
    registries: Dict[str, Registry]
    orgs: OrgDirectory
    lives: List[TrueLife]
    transfers: List[TransferRecord]
    erx_reference: Dict[ASN, Day]
    activities: Dict[ASN, OperationalActivity]
    legit_activity: Dict[ASN, IntervalSet]
    events: List[AnomalyEvent]
    topology: AsTopology
    collectors: List[Collector]
    prefixes: PrefixPlan
    factories: List[ASN]

    #: Memoized views over ``lives``.  The ground truth is immutable
    #: once assembled, but analyses hit these accessors repeatedly (per
    #: figure, per ablation), so rebuilding and re-sorting the full map
    #: on every call is pure waste.  Excluded from equality; treat the
    #: returned structures as read-only.
    _ever_allocated: Optional[Set[ASN]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _lives_by_asn: Optional[Dict[ASN, List[TrueLife]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def end_day(self) -> Day:
        return self.config.end_day

    def ever_allocated(self) -> Set[ASN]:
        if self._ever_allocated is None:
            self._ever_allocated = {life.asn for life in self.lives}
        return self._ever_allocated

    def lives_by_asn(self) -> Dict[ASN, List[TrueLife]]:
        if self._lives_by_asn is None:
            out: Dict[ASN, List[TrueLife]] = {}
            for life in self.lives:
                out.setdefault(life.asn, []).append(life)
            for group in out.values():
                group.sort(key=lambda l: l.start)
            self._lives_by_asn = out
        return self._lives_by_asn

    def announcements_for_day(self, day: Day) -> List[Announcement]:
        """Message-level view: everything announced on one day.

        Legitimately active ASNs originate their own prefix; anomaly
        events contribute forged-origin announcements; spurious
        single-peer observations ride a dedicated peer.  Used by the
        message-level pipeline on bounded windows.
        """
        out: List[Announcement] = []
        for asn, days in self.legit_activity.items():
            if day in days:
                out.append(Announcement(asn, self.prefixes.own_prefix(asn)))
        for event in self.events:
            out.extend(event.announcements(day))
        for asn, activity in self.activities.items():
            if day in activity.single_peer:
                peer = self.collectors[0].peer_asns[0]
                out.append(
                    Announcement(
                        asn, self.prefixes.own_prefix(asn), only_peer=peer
                    )
                )
        return out


class WorldSimulator:
    """Runs one deterministic world from a :class:`WorldConfig`."""

    def __init__(self, config: WorldConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.ledger = IanaLedger()
        self.registries: Dict[str, Registry] = {
            name: Registry(name, default_policy(name), self.ledger)
            for name in RIR_NAMES
        }
        self.orgs = OrgDirectory()
        self.lives: List[TrueLife] = []
        self.open_lives: Dict[ASN, TrueLife] = {}
        self.transfers: List[TransferRecord] = []
        self.erx_reference: Dict[ASN, Day] = {}
        self._dealloc_heap: List[Tuple[Day, ASN]] = []
        self._return_heap: List[Tuple[Day, ASN]] = []
        self._reserved_for_issue: Set[ASN] = set()
        self._erx_pool: List[ASN] = []
        self._erx_schedule: List[Tuple[Day, str]] = []
        self._inter_rir_days: Dict[Day, int] = {}
        #: (day, registry, org_id, cc) — pending 16-bit retries after
        #: failed 32-bit deployments (§6.3)
        self._retry_heap: List[Tuple[Day, str, str, str]] = []

    # -- top level -----------------------------------------------------------

    def run(self) -> World:
        config = self.config
        self._seed_historical(config.start_day)
        self._schedule_erx()
        self._schedule_inter_rir()
        for day in range(config.start_day, config.end_day + 1):
            self._process_deallocations(day)
            self._process_returns(day)
            for registry in self.registries.values():
                registry.tick(day)
            self._process_erx(day)
            self._process_inter_rir(day)
            self._births(day)
            self._process_16bit_retries(day)
            self._maybe_nir_block(day)
            self._maybe_reserve_episode(day)
            self._maybe_regdate_correction(day)
        for life in self.open_lives.values():
            life.end = None
        return self._assemble()

    # -- seeding --------------------------------------------------------------

    def _seed_historical(self, day0: Day) -> None:
        """Pre-window allocations with registration dates back to 1992,
        including the dot-com bubble spike (Fig. 10) and the hoarder
        organizations of §6.3."""
        config, rng = self.config, self.rng
        total = config.scaled(config.historical_allocations)
        split = [("arin", 0.72), ("ripencc", 0.18), ("apnic", 0.10)]
        for registry_name, share in split:
            registry = self.registries[registry_name]
            for _ in range(round(total * share)):
                reg_date = self._historical_reg_date()
                cc = country_for(registry_name, year_of(reg_date), rng)
                org = self.orgs.new_org(registry_name, cc)
                self._allocate_life(
                    registry, day0, org, cc, thirty_two_bit=False,
                    reg_date=reg_date, plan_end=True,
                )
        # hoarder organizations: blocks of mostly-unused siblings
        for index in range(config.scaled(config.hoarder_orgs)):
            registry_name = "arin" if index % 5 < 3 else "ripencc"
            registry = self.registries[registry_name]
            cc = "US" if registry_name == "arin" else "FR"
            org = self.orgs.new_org(registry_name, cc, hoarder=True)
            for _ in range(rng.randint(*config.hoarder_asns)):
                self._allocate_life(
                    registry, day0, org, cc, thirty_two_bit=False,
                    reg_date=self._historical_reg_date(), hoarder=True,
                )
        # a couple of conference networks (AFNOG / APNOG style)
        for registry_name, cc in (("afrinic", "ZA"), ("apnic", "AU")):
            registry = self.registries[registry_name]
            org = self.orgs.new_org(registry_name, cc, conference=True)
            self._allocate_life(
                registry, day0, org, cc, thirty_two_bit=False,
                reg_date=day0 - 900, conference=True,
            )
        # ERX pool: historical ARIN allocations destined for other regions
        arin_lives = [l for l in self.lives if l.registry == "arin" and not l.hoarder]
        rng.shuffle(arin_lives)
        erx_count = min(self.config.scaled(self.config.erx_transfers), len(arin_lives) // 2)
        self._erx_pool = [l.asn for l in arin_lives[:erx_count]]

    def _historical_reg_date(self) -> Day:
        """Registration year mixture with the 1999-2001 bubble spike."""
        rng = self.rng
        roll = rng.random()
        if roll < 0.18:
            year = rng.randint(1992, 1996)
        elif roll < 0.38:
            year = rng.randint(1997, 1998)
        elif roll < 0.80:
            year = rng.randint(1999, 2001)  # the dot-com spike
        else:
            year = rng.randint(2002, 2003)
        date = from_iso(f"{year}-01-01") + rng.randint(0, 358)
        return min(date, self.config.start_day)

    # -- transfers --------------------------------------------------------------

    def _schedule_erx(self) -> None:
        """Batch ERX transfers: 2003-2004 to RIPE/APNIC/LACNIC, 2005 to
        AfriNIC (§3.1 step v)."""
        rng = self.rng
        for asn in self._erx_pool:
            roll = rng.random()
            if roll < 0.70:
                target, lo, hi = "ripencc", "2003-11-15", "2004-12-15"
            elif roll < 0.86:
                target, lo, hi = "apnic", "2003-11-15", "2004-12-15"
            elif roll < 0.96:
                target, lo, hi = "lacnic", "2004-02-01", "2004-12-15"
            else:
                target, lo, hi = "afrinic", "2005-06-01", "2005-12-15"
            day = rng.randint(from_iso(lo), from_iso(hi))
            self._erx_schedule.append((day, target))
        self._erx_schedule.sort()
        self._erx_iter = 0
        self._erx_assignments = dict(zip(self._erx_pool, self._erx_schedule))

    def _process_erx(self, day: Day) -> None:
        for asn, (transfer_day, target) in list(self._erx_assignments.items()):
            if transfer_day != day:
                continue
            del self._erx_assignments[asn]
            life = self.open_lives.get(asn)
            if (
                life is None
                or life.registry != "arin"
                or asn in self._reserved_for_issue
            ):
                continue
            self._transfer(day, life, target, erx=True)

    def _schedule_inter_rir(self) -> None:
        count = self.config.scaled(self.config.inter_rir_transfers)
        lo, hi = from_iso("2009-01-01"), self.config.end_day - 200
        for _ in range(count):
            day = self.rng.randint(lo, hi)
            self._inter_rir_days[day] = self._inter_rir_days.get(day, 0) + 1

    def _process_inter_rir(self, day: Day) -> None:
        for _ in range(self._inter_rir_days.pop(day, 0)):
            candidates = [
                l for l in self.open_lives.values()
                if not l.via_nir and l.asn not in self._reserved_for_issue
            ]
            if not candidates:
                return
            life = self.rng.choice(candidates)
            targets = [n for n in RIR_NAMES if n != life.registry]
            self._transfer(day, life, self.rng.choice(targets), erx=False)

    def _transfer(self, day: Day, life: TrueLife, target: str, *, erx: bool) -> None:
        source = self.registries[life.registry]
        alloc = source.transfer_out(day, life.asn)
        new_cc = country_for(target, year_of(day), self.rng)
        alloc.cc = new_cc
        self.registries[target].transfer_in(day, alloc, keep_regdate=True)
        self.transfers.append(
            TransferRecord(
                asn=life.asn,
                day=day,
                from_rir=life.registry,
                to_rir=target,
                original_reg_date=life.reg_date,
                erx=erx,
            )
        )
        if erx:
            self.erx_reference[life.asn] = life.reg_date
            life.erx = True
        life.registries.append(target)
        life.cc = new_cc

    # -- daily mechanics -----------------------------------------------------------

    def _allocate_life(
        self,
        registry: Registry,
        day: Day,
        org: Organization,
        cc: str,
        *,
        thirty_two_bit: bool,
        reg_date: Optional[Day] = None,
        via_nir: bool = False,
        hoarder: bool = False,
        conference: bool = False,
        plan_end: bool = False,
        prefer_recycled: bool = False,
    ) -> Optional[TrueLife]:
        try:
            alloc = registry.allocate(
                day, org.org_id, cc, thirty_two_bit=thirty_two_bit,
                reg_date=reg_date, via_nir=via_nir,
                prefer_recycled=prefer_recycled,
            )
        except RegistryError:
            if not thirty_two_bit and day >= registry.policy.first_32bit_allocation:
                return self._allocate_life(
                    registry, day, org, cc, thirty_two_bit=True,
                    reg_date=reg_date, via_nir=via_nir, hoarder=hoarder,
                    conference=conference, plan_end=plan_end,
                )
            return None
        life = TrueLife(
            asn=alloc.asn,
            registries=[registry.name],
            org_id=org.org_id,
            cc=cc,
            reg_date=alloc.reg_date,
            start=day,
            end=None,
            via_nir=via_nir,
            hoarder=hoarder,
            conference=conference,
        )
        self.orgs.attach(org, alloc.asn)
        self.lives.append(life)
        self.open_lives[alloc.asn] = life
        if plan_end:
            length = draw_lifetime_days(
                registry.name, self.rng,
                days_remaining=self.config.end_day - day,
            )
            if length is not None:
                heapq.heappush(self._dealloc_heap, (day + length, alloc.asn))
        return life

    def _births(self, day: Day) -> None:
        config, rng = self.config, self.rng
        for name, registry in self.registries.items():
            lam = daily_birth_rate(name, day, config.scale)
            lam *= config.birth_rate_multiplier.get(name, 1.0)
            for _ in range(poisson(rng, lam)):
                if (
                    rng.random() < config.sibling_probability
                    and (org := self.orgs.random_existing(name, rng)) is not None
                ):
                    cc = org.cc
                else:
                    cc = country_for(name, year_of(day), rng)
                    org = self.orgs.new_org(name, cc)
                thirty_two = self._bit_choice(registry, day)
                lag = self._publication_lag(registry)
                prefer_recycled = rng.random() < registry.policy.reuse_preference
                if (
                    thirty_two
                    and day >= registry.policy.default_32bit_from
                    and rng.random() < config.failed_32bit_rate
                ):
                    self._plan_failed_32bit(registry, day, org, cc, day - lag)
                    continue
                self._allocate_life(
                    registry, day, org, cc, thirty_two_bit=thirty_two,
                    reg_date=day - lag, plan_end=True,
                    prefer_recycled=prefer_recycled,
                )

    def _bit_choice(self, registry: Registry, day: Day) -> bool:
        policy = registry.policy
        if day < policy.first_32bit_allocation:
            return False
        if day < policy.default_32bit_from:
            return self.rng.random() < 0.06  # early 32-bit adopters only
        return self.rng.random() >= policy.sixteen_bit_share_after_default

    def _publication_lag(self, registry: Registry) -> int:
        policy = registry.policy
        if self.rng.random() < policy.same_or_next_day_share:
            return self.rng.randint(0, 1)
        return self.rng.randint(2, policy.allocation_publish_lag_max)

    def _plan_failed_32bit(
        self, registry: Registry, day: Day, org: Organization, cc: str,
        reg_date: Day,
    ) -> None:
        """A 32-bit deployment that fails: the allocation is returned
        within a month and a 16-bit retry is scheduled for the same
        organization (§6.3)."""
        life = self._allocate_life(
            registry, day, org, cc, thirty_two_bit=True, reg_date=reg_date,
        )
        if life is None:
            return
        life.failed_32bit = True
        length = self.rng.randint(6, 30)
        heapq.heappush(self._dealloc_heap, (day + length, life.asn))
        retry_day = day + length + self.rng.randint(5, 80)
        if retry_day < self.config.end_day:
            heapq.heappush(
                self._retry_heap, (retry_day, registry.name, org.org_id, cc)
            )

    def _process_16bit_retries(self, day: Day) -> None:
        while self._retry_heap and self._retry_heap[0][0] <= day:
            _, registry_name, org_id, cc = heapq.heappop(self._retry_heap)
            if org_id not in self.orgs:
                continue
            self._allocate_life(
                self.registries[registry_name], day, self.orgs.get(org_id),
                cc, thirty_two_bit=False, plan_end=True, prefer_recycled=True,
            )

    def _process_deallocations(self, day: Day) -> None:
        while self._dealloc_heap and self._dealloc_heap[0][0] <= day:
            _, asn = heapq.heappop(self._dealloc_heap)
            life = self.open_lives.get(asn)
            if life is None or asn in self._reserved_for_issue:
                continue
            self.registries[life.registry].deallocate(day, asn)
            life.end = day - 1
            del self.open_lives[asn]

    def _maybe_reserve_episode(self, day: Day) -> None:
        """Occasionally park an allocated ASN in reserved over an
        administrative issue and return it to the same holder later —
        the same-life merge case of §4.1."""
        if self.rng.random() > 0.15 * self.config.scale * 10:
            return
        candidates = [
            asn for asn, life in self.open_lives.items()
            if asn not in self._reserved_for_issue and not life.via_nir
        ]
        if not candidates:
            return
        asn = self.rng.choice(candidates)
        life = self.open_lives[asn]
        registry = self.registries[life.registry]
        registry.reserve_for_issue(day, asn)
        self._reserved_for_issue.add(asn)
        heapq.heappush(
            self._return_heap, (day + self.rng.randint(10, 80), asn)
        )

    def _process_returns(self, day: Day) -> None:
        while self._return_heap and self._return_heap[0][0] <= day:
            _, asn = heapq.heappop(self._return_heap)
            life = self.open_lives.get(asn)
            if life is None:
                self._reserved_for_issue.discard(asn)
                continue
            registry = self.registries[life.registry]
            registry.return_to_owner(day, asn)
            self._reserved_for_issue.discard(asn)

    def _maybe_nir_block(self, day: Day) -> None:
        config = self.config
        if self.rng.random() > 0.027 * config.scale:
            return
        registry = self.registries["apnic"]
        cc = self.rng.choice(["JP", "CN", "KR", "ID", "IN", "TW", "VN"])
        org = self.orgs.new_org("apnic", cc, nir=True)
        count = self.rng.randint(*config.nir_block_size)
        thirty_two = day >= registry.policy.default_32bit_from
        for _ in range(count):
            self._allocate_life(
                registry, day, org, cc, thirty_two_bit=thirty_two,
                via_nir=True,
            )

    def _maybe_regdate_correction(self, day: Day) -> None:
        if self.rng.random() > self.config.regdate_correction_rate:
            return
        candidates = [
            asn for asn in self.open_lives if asn not in self._reserved_for_issue
        ]
        if not candidates:
            return
        asn = self.rng.choice(candidates)
        life = self.open_lives[asn]
        registry = self.registries[life.registry]
        # corrections only move forward (a backward move is a defect
        # the restoration pipeline repairs, injected separately) and
        # never past the day of the correction itself
        corrected = min(life.reg_date + self.rng.randint(1, 30), day)
        if corrected > life.reg_date:
            registry.correct_regdate(day, asn, corrected)

    # -- assembly -----------------------------------------------------------------

    def _assemble(self) -> World:
        config = self.config
        behavior_rng = random.Random(config.seed + 1)
        model = BehaviorModel(config, behavior_rng)
        legit_parts: Dict[ASN, List[IntervalSet]] = {}
        spurious: Dict[ASN, IntervalSet] = {}

        for life in self.lives:
            if life.failed_32bit:
                life.behavior = LifeBehavior(
                    profile=Profile.UNUSED, activity=IntervalSet()
                )
                continue
            behavior = model.behavior_for_life(
                start=life.start,
                end=life.end,
                window_end=config.end_day,
                reclaim_median=self.registries[life.registry].policy.reclaim_delay_days,
                cc=life.cc,
                hoarder=life.hoarder,
                via_nir=life.via_nir,
                conference=life.conference,
            )
            life.behavior = behavior
            clamped = behavior.activity.clamp(config.start_day, config.end_day)
            if clamped:
                legit_parts.setdefault(life.asn, []).append(clamped)
            if behavior_rng.random() < config.spurious_rate:
                spurious[life.asn] = model.spurious_days(
                    config.start_day, config.end_day
                )

        # one k-way normalize per ASN instead of a pairwise union fold
        legit_activity: Dict[ASN, IntervalSet] = {
            asn: parts[0] if len(parts) == 1 else IntervalSet.union_all(parts)
            for asn, parts in legit_parts.items()
        }

        topology, collectors, factories, big_transits = self._build_infrastructure()
        planner = self._plan_anomalies(factories, big_transits)

        activities: Dict[ASN, OperationalActivity] = {}
        additions = planner.activity_additions()
        for asn in set(legit_activity) | set(additions) | set(spurious):
            observed = legit_activity.get(asn, IntervalSet())
            extra = additions.get(asn)
            if extra is not None:
                observed = observed.union(
                    extra.clamp(config.start_day, config.end_day)
                )
            activities[asn] = OperationalActivity(
                asn=asn,
                observed=observed,
                single_peer=spurious.get(asn, IntervalSet()).difference(observed),
            )

        return World(
            config=config,
            ledger=self.ledger,
            registries=self.registries,
            orgs=self.orgs,
            lives=self.lives,
            transfers=self.transfers,
            erx_reference=self.erx_reference,
            activities=activities,
            legit_activity=legit_activity,
            events=planner.events,
            topology=topology,
            collectors=collectors,
            prefixes=planner.prefixes,
            factories=factories,
        )

    def _build_infrastructure(self):
        config = self.config
        asns = sorted({life.asn for life in self.lives})
        topology = build_topology(asns, config, seed=config.seed + 2)
        collectors = build_collectors(
            topology,
            seed=config.seed + 3,
            routeviews_count=config.routeviews_collectors,
            ris_count=config.ris_collectors,
            peers_per_collector=config.peers_per_collector,
        )
        transits = [a for a in asns if not topology.is_stub(a)]
        rng = random.Random(config.seed + 4)
        factories = sorted(rng.sample(transits, min(3, len(transits))))
        big_transits = transits[:20]
        return topology, collectors, factories, big_transits

    def _plan_anomalies(
        self, factories: Sequence[ASN], big_transits: Sequence[ASN]
    ) -> AnomalyPlanner:
        config = self.config
        planner = AnomalyPlanner(
            config=config,
            rng=random.Random(config.seed + 5),
            prefixes=PrefixPlan(),
            window_end=config.end_day,
        )
        ever = {life.asn for life in self.lives}

        dormant_targets: List[DormantTarget] = []
        post_dealloc: List[Tuple[ASN, Day, Optional[Day]]] = []
        prepend_victims: List[ASN] = []
        digit_victims: List[Tuple[ASN, Interval]] = []
        for life in self.lives:
            behavior = life.behavior
            assert behavior is not None
            admin_end = life.end if life.end is not None else config.end_day
            if behavior.profile == Profile.UNUSED:
                dormant_targets.append(
                    DormantTarget(
                        asn=life.asn, silent_from=life.start,
                        silent_to=admin_end, admin_start=life.start,
                        admin_end=admin_end,
                    )
                )
            elif behavior.dormant_from is not None:
                dormant_targets.append(
                    DormantTarget(
                        asn=life.asn, silent_from=behavior.dormant_from,
                        silent_to=admin_end, admin_start=life.start,
                        admin_end=admin_end,
                    )
                )
            if life.end is not None:
                span = behavior.activity.span
                last_op = span.end if span is not None else None
                post_dealloc.append((life.asn, life.end + 1, last_op))
            if behavior.profile == Profile.NORMAL and behavior.activity:
                if digit_count(life.asn) <= 5 and int(str(life.asn) * 2) <= 4294967295:
                    prepend_victims.append(life.asn)
                span = behavior.activity.span
                if digit_count(life.asn) >= 4 and span is not None:
                    digit_victims.append((life.asn, span))

        planner.plan_dormant_squats(dormant_targets, factories)
        planner.plan_post_dealloc_squats(post_dealloc, factories)
        planner.plan_fat_finger_prepends(prepend_victims, ever)
        planner.plan_fat_finger_digits(digit_victims, ever)
        planner.plan_internal_leaks(big_transits, ever)
        planner.plan_noise_origins(list(big_transits), ever)
        return planner


def simulate(config: Optional[WorldConfig] = None) -> World:
    """Convenience wrapper: run a world from a config (default bench-tiny)."""
    from .config import tiny

    return WorldSimulator(config if config is not None else tiny()).run()
