"""Deterministic prefix assignment for the synthetic Internet.

Every active ASN originates a prefix carved from dedicated /8s so that
assignments never collide; hijack and leak events draw from separate
/8s, making MOAS conflicts an explicit, intentional construction (the
digit-typo events *want* a MOAS with their victim).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..asn.numbers import ASN
from ..net.prefix import Prefix

__all__ = ["PrefixPlan"]

#: /8s used for legitimate per-ASN originations (as /20s: 4096 each).
_LEGIT_BASES = (
    Prefix.parse("10.0.0.0/8"),
    Prefix.parse("45.0.0.0/8"),
    Prefix.parse("57.0.0.0/8"),
    Prefix.parse("99.0.0.0/8"),
)
_SLOTS_PER_BASE = 1 << 12  # /8 -> /20
_HIJACK_BASE = Prefix.parse("24.0.0.0/8")
_LEAK_BASE = Prefix.parse("33.0.0.0/8")


class PrefixPlan:
    """Hands out non-overlapping prefixes, deterministically in call order."""

    def __init__(self) -> None:
        self._own: Dict[ASN, Prefix] = {}
        self._own_cursor = 0
        self._hijack_cursor = 0
        self._leak_cursor = 0

    def own_prefix(self, asn: ASN) -> Prefix:
        """The /20 an ASN originates when active (stable per ASN)."""
        prefix = self._own.get(asn)
        if prefix is None:
            base_index, slot = divmod(self._own_cursor, _SLOTS_PER_BASE)
            base = _LEGIT_BASES[base_index % len(_LEGIT_BASES)]
            prefix = base.subprefix(slot, 20)
            self._own_cursor += 1
            self._own[asn] = prefix
        return prefix

    def capacity(self) -> int:
        """Distinct own-prefix slots before assignments would repeat."""
        return _SLOTS_PER_BASE * len(_LEGIT_BASES)

    def hijack_prefixes(self, count: int) -> Tuple[Prefix, ...]:
        """Fresh /20s for a squat/hijack event (paper: tens of /16-/20s)."""
        out: List[Prefix] = []
        for _ in range(count):
            out.append(_HIJACK_BASE.subprefix(self._hijack_cursor % (1 << 12), 20))
            self._hijack_cursor += 1
        return tuple(out)

    def leak_pair(self) -> Tuple[Prefix, Prefix]:
        """(covering /12, leaked /24 inside it) for an internal-leak event."""
        covering = _LEAK_BASE.subprefix(self._leak_cursor % (1 << 4), 12)
        leaked = covering.subprefix((self._leak_cursor * 7) % (1 << 12), 24)
        self._leak_cursor += 1
        return covering, leaked
