"""Anomaly scheduling: plant the §6 malicious and misconfigured events.

Given the true administrative lives and their materialized behaviors,
:class:`AnomalyPlanner` schedules the five event families of §6 with
the exact joint-lens signatures the paper describes, returning both the
ground-truth events and the extra BGP activity they generate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..asn.bogons import is_bogon_asn
from ..asn.numbers import AS32_MAX, ASN, digit_count
from ..bgp.anomalies import (
    FAT_FINGER_DIGIT,
    FAT_FINGER_PREPEND,
    INTERNAL_LEAK,
    NOISE_ORIGIN,
    SQUAT_DORMANT,
    SQUAT_POST_DEALLOC,
    AnomalyEvent,
)
from ..bgp.stream import Announcement
from ..timeline.dates import Day
from ..timeline.intervals import Interval, IntervalSet
from .config import WorldConfig
from .prefixes import PrefixPlan

__all__ = ["DormantTarget", "AnomalyPlanner"]


@dataclass(frozen=True)
class DormantTarget:
    """An allocated ASN with a long silent span, squattable inside it."""

    asn: ASN
    silent_from: Day
    silent_to: Day
    admin_start: Day
    admin_end: Day


@dataclass
class AnomalyPlanner:
    """Schedules anomaly events; deterministic for a given RNG state."""

    config: WorldConfig
    rng: random.Random
    prefixes: PrefixPlan
    window_end: Day
    extra_activity: Dict[ASN, List[Interval]] = field(default_factory=dict)
    events: List[AnomalyEvent] = field(default_factory=list)

    def _add_activity(self, asn: ASN, interval: Interval) -> None:
        self.extra_activity.setdefault(asn, []).append(interval)

    # -- §6.1.2: squatting of dormant (allocated) ASNs -------------------------

    def plan_dormant_squats(
        self,
        targets: Sequence[DormantTarget],
        factories: Sequence[ASN],
        *,
        min_dormancy: int = 1100,
    ) -> None:
        """Awaken dormant ASNs through "hijack factory" upstreams.

        Each event keeps the paper's signature: >1000 days of allocated
        silence first, then a burst far shorter than 5% of the
        administrative life.  Some events are grouped onto the same
        factory and overlapping days, reproducing the coordinated waves
        (the 31-ASNs-wake-up-together episode of §6.1.2).
        """
        if not factories:
            return
        count = self.config.scaled(self.config.dormant_squat_events)
        usable = [
            t for t in targets if t.silent_to - t.silent_from + 1 >= min_dormancy
        ]
        self.rng.shuffle(usable)
        wave_start: Optional[Day] = None
        for index, target in enumerate(usable[:count]):
            factory = factories[index % len(factories)]
            earliest = target.silent_from + min_dormancy
            latest = min(target.silent_to, self.window_end) - 40
            if earliest >= latest:
                continue
            in_wave = index % 6 == 5 and wave_start is not None
            if in_wave and earliest <= wave_start <= latest:
                start = wave_start
            else:
                start = self.rng.randint(earliest, latest)
                wave_start = start
            duration = self.rng.randint(3, 31)
            admin_days = target.admin_end - target.admin_start + 1
            duration = min(duration, max(3, int(admin_days * 0.04)))
            interval = Interval(start, min(start + duration - 1, self.window_end))
            n_prefixes = self.rng.randint(5, 60)
            self.events.append(
                AnomalyEvent(
                    kind=SQUAT_DORMANT,
                    interval=interval,
                    origin=target.asn,
                    announcer=factory,
                    prefixes=self.prefixes.hijack_prefixes(n_prefixes),
                    note="dormant awakening",
                )
            )
            self._add_activity(target.asn, interval)

    # -- §6.4: squatting after deallocation -------------------------------------

    def plan_post_dealloc_squats(
        self,
        candidates: Sequence[Tuple[ASN, Day, Optional[Day]]],
        factories: Sequence[ASN],
    ) -> None:
        """Squat freshly deallocated ASNs.

        ``candidates`` rows are (asn, dealloc day, last BGP day or
        ``None``); the event starts days after deallocation but only
        for ASNs whose own activity (if any) ended >1000 days earlier —
        the AS12391 shape.
        """
        if not factories:
            return
        count = self.config.scaled(self.config.post_dealloc_squat_events)
        planned = 0
        for asn, dealloc_day, last_op in candidates:
            if planned >= count:
                break
            start = dealloc_day + self.rng.randint(2, 45)
            if last_op is not None and start - last_op < 1001:
                continue
            if start + 20 > self.window_end:
                continue
            interval = Interval(start, start + self.rng.randint(2, 20))
            self.events.append(
                AnomalyEvent(
                    kind=SQUAT_POST_DEALLOC,
                    interval=interval,
                    origin=asn,
                    announcer=factories[planned % len(factories)],
                    prefixes=self.prefixes.hijack_prefixes(self.rng.randint(2, 6)),
                    note="squat after deallocation",
                )
            )
            self._add_activity(asn, interval)
            planned += 1

    # -- §6.4: fat-finger misconfigurations ---------------------------------------

    def plan_fat_finger_prepends(
        self, victims: Sequence[ASN], ever_allocated: Set[ASN]
    ) -> None:
        """Failed prepends: the origin becomes the first hop's digits
        doubled (AS32026 → AS3202632026)."""
        count = self.config.scaled(self.config.fat_finger_prepend_events)
        planned = 0
        for victim in victims:
            if planned >= count:
                break
            typo = int(str(victim) * 2)
            if typo > AS32_MAX or typo in ever_allocated or is_bogon_asn(typo):
                continue
            start = self.rng.randint(1, max(1, self.window_end - 400))
            start = max(start, self.window_end - self.rng.randint(400, 5000))
            duration = self.rng.randint(1, 300)
            interval = Interval(start, min(start + duration - 1, self.window_end))
            self.events.append(
                AnomalyEvent(
                    kind=FAT_FINGER_PREPEND,
                    interval=interval,
                    origin=typo,
                    announcer=victim,
                    prefixes=(self.prefixes.own_prefix(victim),),
                    victim=victim,
                    note="failed AS-path prepend",
                )
            )
            self._add_activity(typo, interval)
            planned += 1

    def plan_fat_finger_digits(
        self,
        victims: Sequence[Tuple[ASN, Interval]],
        ever_allocated: Set[ASN],
    ) -> None:
        """One-digit typos causing months-long MOAS conflicts.

        The announcer is the *victim's own network*: its router
        originates with a mistyped ASN while the network also announces
        the prefix legitimately — which is why the paper could verify
        "the upstream ASNs in the AS paths match the upstreams of the
        corresponding legitimate ASN".  ``victims`` rows carry the
        victim's activity span so the typo overlaps real announcements
        (the MOAS the paper observes).
        """
        count = self.config.scaled(self.config.fat_finger_digit_events)
        planned = 0
        for victim, active_span in victims:
            if planned >= count:
                break
            typo = self._mutate_digit(victim, ever_allocated)
            if typo is None:
                continue
            duration = self.rng.randint(30, 300)  # "can last several months"
            latest = min(active_span.end - duration, self.window_end - duration)
            if latest <= active_span.start:
                continue
            start = self.rng.randint(active_span.start, latest)
            interval = Interval(start, min(start + duration - 1, self.window_end))
            self.events.append(
                AnomalyEvent(
                    kind=FAT_FINGER_DIGIT,
                    interval=interval,
                    origin=typo,
                    announcer=victim,
                    prefixes=(self.prefixes.own_prefix(victim),),  # MOAS!
                    victim=victim,
                    note="one-digit origin typo",
                )
            )
            self._add_activity(typo, interval)
            planned += 1

    def _mutate_digit(self, victim: ASN, ever_allocated: Set[ASN]) -> Optional[ASN]:
        digits = str(victim)
        for _ in range(8):
            pos = self.rng.randrange(len(digits))
            replacement = str(self.rng.randint(0, 9))
            if replacement == digits[pos] or (pos == 0 and replacement == "0"):
                continue
            mutated = int(digits[:pos] + replacement + digits[pos + 1 :])
            if (
                mutated != victim
                and mutated <= AS32_MAX
                and mutated not in ever_allocated
                and not is_bogon_asn(mutated)
            ):
                return mutated
        return None

    # -- §6.4: internal numbering leaks ----------------------------------------------

    def plan_internal_leaks(
        self, big_transits: Sequence[ASN], ever_allocated: Set[ASN]
    ) -> None:
        """Huge valid-but-never-allocated ASNs leaking through a large
        operator for months to years (the AS290012147 pattern)."""
        count = self.config.scaled(self.config.internal_leak_events)
        planned = 0
        attempts = 0
        while planned < count and attempts < count * 20 and big_transits:
            attempts += 1
            origin = self.rng.randint(10**8, 4_190_000_000)
            if origin in ever_allocated or is_bogon_asn(origin):
                continue
            if digit_count(origin) < 9:
                continue
            carrier = big_transits[planned % len(big_transits)]
            covering, leaked = self.prefixes.leak_pair()
            duration = self.rng.randint(180, 900)  # months to years
            start = self.rng.randint(1, max(2, self.window_end - duration - 1))
            start = max(start, self.window_end - self.rng.randint(duration, 4000))
            interval = Interval(start, min(start + duration - 1, self.window_end))
            self.events.append(
                AnomalyEvent(
                    kind=INTERNAL_LEAK,
                    interval=interval,
                    origin=origin,
                    announcer=carrier,
                    prefixes=(leaked,),
                    victim=carrier,
                    note=f"internal ASN leaking inside {covering}",
                    # the operator legitimately announces the covering
                    # aggregate the leaked /24 falls inside (§6.4)
                    extra_announcements=(
                        Announcement(announcer=carrier, prefix=covering),
                    ),
                )
            )
            self._add_activity(origin, interval)
            planned += 1

    # -- §6.4: unexplained never-allocated noise ------------------------------------

    def plan_noise_origins(
        self, announcers: Sequence[ASN], ever_allocated: Set[ASN]
    ) -> None:
        """Short-lived never-allocated origins with no clean explanation.

        The paper's 868 never-allocated ASNs are dominated by brief
        appearances: only 427 were active more than one day, 186 more
        than a month, 15 more than a year.  Durations here follow that
        skew.
        """
        if not announcers:
            return
        count = self.config.scaled(self.config.noise_origin_events)
        planned = 0
        attempts = 0
        while planned < count and attempts < count * 20:
            attempts += 1
            origin = self.rng.randint(100_000, 4_000_000)
            if origin in ever_allocated or is_bogon_asn(origin):
                continue
            roll = self.rng.random()
            if roll < 0.50:
                duration = 1
            elif roll < 0.80:
                duration = self.rng.randint(2, 30)
            elif roll < 0.98:
                duration = self.rng.randint(31, 365)
            else:
                duration = self.rng.randint(366, 900)
            start = self.rng.randint(1, max(2, self.window_end - duration - 1))
            start = max(start, self.window_end - self.rng.randint(duration, 6000))
            interval = Interval(start, min(start + duration - 1, self.window_end))
            announcer = announcers[planned % len(announcers)]
            self.events.append(
                AnomalyEvent(
                    kind=NOISE_ORIGIN,
                    interval=interval,
                    origin=origin,
                    announcer=announcer,
                    prefixes=self.prefixes.hijack_prefixes(1),
                    note="unexplained never-allocated origin",
                )
            )
            self._add_activity(origin, interval)
            planned += 1

    # -- assembly ----------------------------------------------------------------------

    def activity_additions(self) -> Dict[ASN, IntervalSet]:
        """The per-ASN extra observed activity all events generate."""
        return {
            asn: IntervalSet(intervals)
            for asn, intervals in self.extra_activity.items()
        }
