"""Operational behavior profiles: how allocated ASNs act in BGP.

For every true administrative life the simulator decides a profile and
materializes daily activity:

* **unused** — never announced (probability shaped by country, hoarder
  status, and NIR block membership — the §6.3 mechanisms);
* **normal** — activity starts a few weeks after allocation (median
  just over a month, §6.1.1), ends months before deallocation (the
  late-deallocation lag), with occasional intra-life gaps whose length
  distribution puts its knee at ~30 days (Fig. 3);
* **retired** — goes silent years before the allocation ends, creating
  the dormant population squatters target (§6.1.2);
* **conference** — one week of activity a few times a year (the AFNOG
  / APRICOT pattern behind >10 operational lives, §6.1.1);
* **dangling** / **early start** — §6.2's partial overlaps.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from ..timeline.dates import Day
from ..timeline.intervals import Interval, IntervalSet
from .config import WorldConfig
from .growth import poisson

__all__ = ["Profile", "BehaviorModel", "LifeBehavior"]


class Profile:
    """Profile labels (ground truth, kept for scoring and tests)."""

    UNUSED = "unused"
    NORMAL = "normal"
    RETIRED = "retired"
    CONFERENCE = "conference"


@dataclass
class LifeBehavior:
    """The materialized behavior of one administrative life."""

    profile: str
    activity: IntervalSet
    dangling: bool = False
    early_start: bool = False
    dormant_from: Optional[Day] = None  # first day of terminal silence


class BehaviorModel:
    """Draws per-life operational behavior, deterministically per seed."""

    def __init__(self, config: WorldConfig, rng: random.Random) -> None:
        self._config = config
        self._rng = rng

    # -- profile choice ------------------------------------------------------

    def unused_probability(
        self, cc: str, *, hoarder: bool, via_nir: bool
    ) -> float:
        config = self._config
        p = config.unused_probability
        p *= config.unused_country_multiplier.get(cc, 1.0)
        if hoarder:
            p = 1.0 - config.hoarder_used_probability
        if via_nir:
            p = max(p, 0.45)  # NIR sub-allocations often invisible (§6.3)
        return min(p, 0.97)

    def choose_profile(
        self, cc: str, *, hoarder: bool, via_nir: bool, conference: bool
    ) -> str:
        rng = self._rng
        if conference:
            return Profile.CONFERENCE
        if rng.random() < self.unused_probability(cc, hoarder=hoarder, via_nir=via_nir):
            return Profile.UNUSED
        if rng.random() < self._config.sporadic_rate:
            return Profile.CONFERENCE
        if rng.random() < 0.06:
            return Profile.RETIRED
        return Profile.NORMAL

    # -- activity materialization ---------------------------------------------

    def behavior_for_life(
        self,
        *,
        start: Day,
        end: Optional[Day],
        window_end: Day,
        reclaim_median: int,
        cc: str,
        hoarder: bool = False,
        via_nir: bool = False,
        conference: bool = False,
    ) -> LifeBehavior:
        """Materialize the activity of one administrative life.

        ``end is None`` means the allocation outlives the window.  The
        returned activity may exceed [start, end] for dangling and
        early-start lives, but never the observation window.
        """
        rng = self._rng
        profile = self.choose_profile(
            cc, hoarder=hoarder, via_nir=via_nir, conference=conference
        )
        if profile == Profile.UNUSED:
            return LifeBehavior(profile=profile, activity=IntervalSet())
        admin_end = end if end is not None else window_end

        if profile == Profile.CONFERENCE:
            return LifeBehavior(
                profile=profile,
                activity=self._conference_activity(start, admin_end),
            )

        early = rng.random() < self._config.early_start_rate
        if early:
            op_start = max(start - rng.randint(1, 10), 1)
        else:
            op_start = start + self._start_delay()

        dangling = False
        if end is None:
            if profile == Profile.RETIRED:
                # go silent somewhere inside the life, leaving a long
                # allocated-but-dormant tail
                op_end = op_start + max(
                    30, int((admin_end - op_start) * rng.uniform(0.05, 0.6))
                )
            else:
                op_end = admin_end
        else:
            lag = self._reclaim_lag(reclaim_median)
            op_end = end - lag
            if rng.random() < self._config.dangling_rate:
                dangling = True
                op_end = end + rng.randint(10, 700)
        op_end = min(op_end, window_end)
        if op_end < op_start:
            return LifeBehavior(profile=Profile.UNUSED, activity=IntervalSet())

        activity = self._punch_gaps(op_start, op_end)
        if (
            end is not None
            and not dangling
            and rng.random() < self._config.ghost_burst_rate
        ):
            # a detached burst well after deallocation (stuck routes /
            # stale router configs): an operational life entirely
            # outside the administrative one (§6.4)
            burst_start = end + rng.randint(40, 400)
            burst_end = burst_start + rng.randint(0, 59)
            if burst_start <= window_end:
                activity = activity.add(
                    Interval(burst_start, min(burst_end, window_end))
                )
        dormant_from = None
        if profile == Profile.RETIRED and end is None and op_end < admin_end:
            dormant_from = op_end + 1
        return LifeBehavior(
            profile=profile,
            activity=activity,
            dangling=dangling,
            early_start=early,
            dormant_from=dormant_from,
        )

    # -- internals ------------------------------------------------------------

    def _start_delay(self) -> int:
        """Exponential delay with the configured median (>1 month)."""
        median = self._config.median_start_delay
        return int(self._rng.expovariate(math.log(2) / median))

    def _reclaim_lag(self, median: int) -> int:
        """Days between the last BGP day and deallocation (§6.1.1)."""
        return int(self._rng.expovariate(math.log(2) / median))

    def _punch_gaps(self, start: Day, end: Day) -> IntervalSet:
        """Carve intra-life inactivity gaps into a continuous span."""
        rng = self._rng
        duration = end - start + 1
        expected = duration / 800 * self._config.gap_rate_per_800_days
        holes: List[Interval] = []
        for _ in range(poisson(rng, expected)):
            if rng.random() < self._config.short_gap_share:
                length = rng.randint(1, 30)
            else:
                length = rng.randint(31, 400)
            if length >= duration - 2:
                continue
            gap_start = rng.randint(start + 1, end - length)
            holes.append(Interval(gap_start, gap_start + length - 1))
        # subtracting the union of holes in one pass is identical to an
        # iterated per-hole difference (A \ h1 \ h2 = A \ (h1 ∪ h2))
        activity = IntervalSet([Interval(start, end)])
        if holes:
            activity = activity.difference(IntervalSet(holes))
        return activity

    def _conference_activity(self, start: Day, end: Day) -> IntervalSet:
        """One week of activity every ~120 days."""
        rng = self._rng
        intervals: List[Interval] = []
        cursor = start + rng.randint(0, 60)
        while cursor + 7 <= end:
            intervals.append(Interval(cursor, cursor + rng.randint(4, 8)))
            cursor += rng.randint(90, 160)
        if not intervals and start <= end:
            intervals.append(Interval(start, min(start + 6, end)))
        return IntervalSet(intervals)

    def spurious_days(self, window_start: Day, window_end: Day) -> IntervalSet:
        """A couple of isolated single-peer observation days."""
        rng = self._rng
        count = rng.randint(1, 3)
        days = set()
        for _ in range(count):
            day = rng.randint(window_start, window_end)
            days.update(range(day, day + rng.randint(1, 2)))
        return IntervalSet.from_days(d for d in days if d <= window_end)
