"""Inspect toolkit: consume trace/metrics/manifest/ledger artifacts.

PR 4 made every ``simulate`` run emit its observability artifacts
(``trace.jsonl``, ``metrics.json``, ``run_manifest.json``; PR 5 adds
``ledger.json``) — this module is what *reads* them.  Three consumers,
surfaced as the ``repro inspect`` CLI family:

``inspect trace``
    Render the nested span tree with critical-path highlighting, and
    export folded stacks (one ``a;b;c <self-µs>`` line per span) for
    flamegraph tooling.

``inspect diff``
    Compare two runs' manifest+metrics+trace triples.  Identity first —
    manifest digests, config hashes, span digests, settings — then
    per-stage wall-time deltas, each attributed to a cause: a cache
    attribute that flipped (``cache-miss``/``cache-hit``), a fan-out
    whose task-duration imbalance worsened (``fan-out-imbalance``), or
    a plain ``stage-slowdown``/``stage-speedup``.

``inspect ledger``
    The conservation table (rendering lives in
    :mod:`repro.runtime.ledger`; the CLI wires it up).

``inspect serve-log``
    Per-route latency/error tables and top-ASN heat from a serve
    access log (``serve-access/v1`` JSONL, written by ``repro serve
    --access-log``); sampled logs are scaled back up by their recorded
    sampling factor.

Everything here is read-only over JSON documents: no pipeline imports,
so ``inspect`` works on artifacts from any run, any machine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Union

from .observability import TRACE_FORMAT

__all__ = [
    "TraceView",
    "load_trace",
    "critical_path",
    "render_trace",
    "folded_stacks",
    "RunArtifacts",
    "load_run",
    "stage_seconds",
    "stage_cache_modes",
    "diff_runs",
    "render_diff",
    "load_access_log",
    "render_serve_log",
]


# -- trace loading ----------------------------------------------------------


@dataclass
class TraceView:
    """An indexed, read-only view of one ``trace.jsonl`` file."""

    header: Dict[str, Any]
    spans: List[Dict[str, Any]] = field(default_factory=list)
    by_id: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    children: Dict[Optional[int], List[Dict[str, Any]]] = field(
        default_factory=dict
    )

    @property
    def roots(self) -> List[Dict[str, Any]]:
        """Spans with no parent in the trace (normally exactly one)."""
        return self.children.get(None, [])

    def stage_spans(self) -> List[Dict[str, Any]]:
        return [s for s in self.spans if s.get("kind") == "stage"]

    def tasks_of(self, span: Mapping[str, Any]) -> List[Dict[str, Any]]:
        """Task-kind children of one span."""
        return [
            child
            for child in self.children.get(span.get("span_id"), [])
            if child.get("kind") == "task"
        ]


def load_trace(path: Union[str, Path]) -> TraceView:
    """Load and index a ``pipeline-trace/v1`` JSON-lines file."""
    path = Path(path)
    if path.is_dir():
        path = path / "trace.jsonl"
    header: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    with path.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if not header and "span_id" not in record:
                header = record
                continue
            spans.append(record)
    if header.get("format") != TRACE_FORMAT:
        raise ValueError(f"{path} is not a {TRACE_FORMAT} file")
    view = TraceView(header=header, spans=spans)
    ids = {span.get("span_id") for span in spans}
    for span in spans:
        view.by_id[span["span_id"]] = span
        parent = span.get("parent_id")
        # Orphans (parent never exported) render as roots rather than
        # vanishing from the tree.
        key = parent if parent in ids else None
        view.children.setdefault(key, []).append(span)
    for siblings in view.children.values():
        siblings.sort(key=lambda s: (s.get("start", 0.0), s.get("span_id", 0)))
    return view


def critical_path(view: TraceView) -> Set[int]:
    """Span ids on the heaviest root-to-leaf chain.

    Greedy descent: from each root, repeatedly step into the child with
    the largest duration.  With spans timed by wall clock this is the
    chain a reader should optimise first.
    """
    path: Set[int] = set()
    roots = view.roots
    if not roots:
        return path
    node = max(roots, key=lambda s: s.get("seconds", 0.0))
    while node is not None:
        path.add(node["span_id"])
        kids = view.children.get(node["span_id"], [])
        node = max(kids, key=lambda s: s.get("seconds", 0.0)) if kids else None
    return path


def render_trace(
    view: TraceView,
    *,
    max_depth: Optional[int] = None,
    mark_critical: bool = True,
) -> str:
    """The span tree, one line per span, critical path starred."""
    hot = critical_path(view) if mark_critical else set()
    total = sum(s.get("seconds", 0.0) for s in view.roots) or 1.0
    lines = [
        f"Trace {view.header.get('trace_id', '?')} — "
        f"{len(view.spans)} spans"
        + (" (critical path starred)" if mark_critical else ""),
    ]

    def walk(span: Dict[str, Any], depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        seconds = span.get("seconds", 0.0)
        attrs = span.get("attrs", {})
        extras = []
        if "items" in attrs:
            extras.append(f"items={attrs['items']}")
        if "bytes_shipped" in attrs:
            extras.append(f"shipped={attrs['bytes_shipped']}B")
        if "cache" in attrs:
            extras.append(f"cache={attrs['cache']}")
        if span.get("annotations"):
            extras.append(f"notes={len(span['annotations'])}")
        star = "*" if span["span_id"] in hot else " "
        lines.append(
            f"{star} {'  ' * depth}{span.get('name', '?'):<{max(44 - 2 * depth, 8)}}"
            f" {seconds:>9.3f}s {seconds / total:>6.1%}"
            + (f"  [{', '.join(extras)}]" if extras else "")
        )
        for child in view.children.get(span["span_id"], []):
            walk(child, depth + 1)

    for root in view.roots:
        walk(root, 0)
    return "\n".join(lines)


def folded_stacks(view: TraceView) -> List[str]:
    """Folded-stack lines (``root;stage;task <self-time-µs>``).

    Self time is the span's duration minus its children's, floored at
    zero (task spans timed in workers can overlap their parent's
    accounting); the µs unit keeps sub-millisecond spans nonzero.
    Feed the joined lines to any flamegraph renderer.
    """
    lines: List[str] = []

    def walk(span: Dict[str, Any], trail: Sequence[str]) -> None:
        path = list(trail) + [str(span.get("name", "?"))]
        kids = view.children.get(span["span_id"], [])
        child_seconds = sum(k.get("seconds", 0.0) for k in kids)
        self_us = max(0.0, span.get("seconds", 0.0) - child_seconds) * 1e6
        lines.append(f"{';'.join(path)} {int(round(self_us))}")
        for child in kids:
            walk(child, path)

    for root in view.roots:
        walk(root, [])
    return lines


# -- run loading ------------------------------------------------------------


@dataclass
class RunArtifacts:
    """The artifact triple (plus ledger) of one ``simulate`` run."""

    path: Path
    manifest: Optional[Dict[str, Any]] = None
    metrics: Optional[Dict[str, Any]] = None
    trace: Optional[TraceView] = None
    ledger: Optional[Dict[str, Any]] = None

    @property
    def digest(self) -> Optional[str]:
        return (self.manifest or {}).get("digest")

    @property
    def label(self) -> str:
        digest = self.digest
        return f"{self.path.name} ({digest[:12]})" if digest else self.path.name


def load_run(
    path: Union[str, Path],
    *,
    artifacts: Optional[Mapping[str, str]] = None,
) -> RunArtifacts:
    """Load whatever artifacts a run directory holds.

    ``artifacts`` overrides individual file locations (the run
    registry records them per run); defaults are the ``simulate``
    output names.  Missing files load as ``None`` — ``diff_runs``
    degrades gracefully.
    """
    path = Path(path)
    names = {
        "manifest": "run_manifest.json",
        "metrics": "metrics.json",
        "trace": "trace.jsonl",
        "ledger": "ledger.json",
    }
    if artifacts:
        names.update({k: v for k, v in artifacts.items() if k in names})

    def resolve(name: str) -> Path:
        candidate = Path(names[name])
        return candidate if candidate.is_absolute() else path / candidate

    run = RunArtifacts(path=path)
    manifest_path = resolve("manifest")
    if manifest_path.exists():
        run.manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    metrics_path = resolve("metrics")
    if metrics_path.exists():
        run.metrics = json.loads(metrics_path.read_text(encoding="utf-8"))
    trace_path = resolve("trace")
    if trace_path.exists():
        run.trace = load_trace(trace_path)
    ledger_path = resolve("ledger")
    if ledger_path.exists():
        from .ledger import load_ledger

        run.ledger = load_ledger(ledger_path)
    return run


def stage_seconds(run: RunArtifacts) -> Dict[str, float]:
    """stage name → total wall seconds, metrics first, trace fallback.

    The metrics snapshot's ``stage.<name>.seconds`` histogram sums are
    authoritative (that is what the perf gate reads); runs captured
    without ``--metrics-out`` fall back to summing trace stage spans.
    """
    if run.metrics is not None:
        out: Dict[str, float] = {}
        for name, summary in run.metrics.get("histograms", {}).items():
            if name.startswith("stage.") and name.endswith(".seconds"):
                out[name[len("stage."):-len(".seconds")]] = float(
                    summary.get("sum", 0.0)
                )
        if out:
            return out
    if run.trace is not None:
        out = {}
        for span in run.trace.stage_spans():
            name = str(span.get("name", "?"))
            out[name] = out.get(name, 0.0) + float(span.get("seconds", 0.0))
        return out
    return {}


def stage_cache_modes(run: RunArtifacts) -> Dict[str, str]:
    """stage name → its span's ``cache`` attribute (hit/miss), if any."""
    modes: Dict[str, str] = {}
    if run.trace is None:
        return modes
    for span in run.trace.stage_spans():
        cache = span.get("attrs", {}).get("cache")
        if cache is not None:
            modes[str(span.get("name", "?"))] = str(cache)
    return modes


def _fanout_imbalance(run: RunArtifacts, stage: str) -> Optional[float]:
    """max/mean task-duration ratio under a stage (≥2 tasks), else None."""
    if run.trace is None:
        return None
    worst: Optional[float] = None
    for span in run.trace.stage_spans():
        if span.get("name") != stage:
            continue
        tasks = run.trace.tasks_of(span)
        if len(tasks) < 2:
            continue
        seconds = [float(t.get("seconds", 0.0)) for t in tasks]
        mean = sum(seconds) / len(seconds)
        if mean <= 0:
            continue
        ratio = max(seconds) / mean
        worst = ratio if worst is None else max(worst, ratio)
    return worst


# -- run diffing ------------------------------------------------------------

#: Relative wall-time change below which a stage is "unchanged".
DIFF_THRESHOLD = 0.20

#: Absolute floor (seconds) below which relative noise is ignored.
DIFF_ABS_FLOOR = 0.01

#: A fan-out counts as newly imbalanced when its max/mean task-duration
#: ratio worsened by at least this factor.
IMBALANCE_FACTOR = 1.25


def diff_runs(
    a: RunArtifacts,
    b: RunArtifacts,
    *,
    threshold: float = DIFF_THRESHOLD,
    abs_floor: float = DIFF_ABS_FLOOR,
) -> Dict[str, Any]:
    """Compare two runs and attribute per-stage wall-time deltas.

    Attribution rules, in order, per stage:

    1. The stage span's ``cache`` attribute flipped hit→miss (or the
       stage newly appeared alongside a flip): ``cache-miss`` — B paid
       a rebuild A skipped.  The reverse flip is ``cache-hit``.
    2. Stage present in only one run: ``added`` / ``removed`` (a
       config or code change; identity section will disagree too).
    3. Relative delta beyond ``threshold`` (and ``abs_floor``): if the
       stage's task-duration imbalance (max/mean) worsened by
       ``IMBALANCE_FACTOR``, ``fan-out-imbalance`` — the pool waited
       on a straggler; otherwise ``stage-slowdown``/``stage-speedup``.
    4. Else ``unchanged``.
    """
    manifest_a = a.manifest or {}
    manifest_b = b.manifest or {}
    settings_a = manifest_a.get("settings", {})
    settings_b = manifest_b.get("settings", {})
    identity = {
        "digest_a": manifest_a.get("digest"),
        "digest_b": manifest_b.get("digest"),
        "same_digest": bool(manifest_a.get("digest"))
        and manifest_a.get("digest") == manifest_b.get("digest"),
        "same_config": manifest_a.get("config_hash") == manifest_b.get("config_hash"),
        "same_span_digest": (manifest_a.get("span_digest") or {}).get("sha256")
        == (manifest_b.get("span_digest") or {}).get("sha256"),
        "settings_changed": sorted(
            key
            for key in set(settings_a) | set(settings_b)
            if settings_a.get(key) != settings_b.get(key)
        ),
    }

    seconds_a = stage_seconds(a)
    seconds_b = stage_seconds(b)
    cache_a = stage_cache_modes(a)
    cache_b = stage_cache_modes(b)

    stages: List[Dict[str, Any]] = []
    for name in sorted(set(seconds_a) | set(seconds_b)):
        sa = seconds_a.get(name)
        sb = seconds_b.get(name)
        row: Dict[str, Any] = {
            "stage": name,
            "seconds_a": sa,
            "seconds_b": sb,
            "delta": (sb or 0.0) - (sa or 0.0),
        }
        mode_a = cache_a.get(name)
        mode_b = cache_b.get(name)
        if mode_a != mode_b and (mode_a, mode_b) != (None, None):
            row["cache"] = f"{mode_a or '-'}→{mode_b or '-'}"
        if mode_a == "hit" and mode_b == "miss":
            row["cause"] = "cache-miss"
        elif mode_a == "miss" and mode_b == "hit":
            row["cause"] = "cache-hit"
        elif sa is None:
            row["cause"] = "added"
        elif sb is None:
            row["cause"] = "removed"
        else:
            base = max(sa, abs_floor)
            rel = (sb - sa) / base
            if abs(sb - sa) <= abs_floor or abs(rel) <= threshold:
                row["cause"] = "unchanged"
            else:
                imb_a = _fanout_imbalance(a, name)
                imb_b = _fanout_imbalance(b, name)
                if (
                    sb > sa
                    and imb_a is not None
                    and imb_b is not None
                    and imb_b >= imb_a * IMBALANCE_FACTOR
                ):
                    row["cause"] = "fan-out-imbalance"
                    row["imbalance"] = f"{imb_a:.2f}→{imb_b:.2f}"
                else:
                    row["cause"] = "stage-slowdown" if sb > sa else "stage-speedup"
            row["relative"] = rel
        stages.append(row)

    total_a = sum(seconds_a.values())
    total_b = sum(seconds_b.values())
    return {
        "a": str(a.path),
        "b": str(b.path),
        "identity": identity,
        "stages": stages,
        "total_seconds_a": total_a,
        "total_seconds_b": total_b,
        "total_delta": total_b - total_a,
    }


def render_diff(diff: Mapping[str, Any]) -> str:
    """Human-readable report of a :func:`diff_runs` result."""
    identity = diff.get("identity", {})
    lines = [f"Run diff: {diff.get('a')} → {diff.get('b')}"]
    da, db = identity.get("digest_a"), identity.get("digest_b")
    if da or db:
        lines.append(
            f"  manifest digests: {str(da)[:12]} vs {str(db)[:12]}"
            + (" (identical)" if identity.get("same_digest") else "")
        )
    if not identity.get("same_config", True):
        lines.append("  config hash differs — not the same input world")
    if not identity.get("same_span_digest", True):
        lines.append("  span digest differs — the runs took different stage paths")
    if identity.get("settings_changed"):
        lines.append(
            "  settings changed: " + ", ".join(identity["settings_changed"])
        )
    lines.append(
        f"{'stage':<30} {'A':>9} {'B':>9} {'delta':>9}  cause"
    )
    for row in diff.get("stages", []):
        sa = row.get("seconds_a")
        sb = row.get("seconds_b")
        extras = []
        if row.get("cache"):
            extras.append(f"cache {row['cache']}")
        if row.get("imbalance"):
            extras.append(f"imbalance {row['imbalance']}")
        lines.append(
            f"{row.get('stage', ''):<30} "
            f"{'' if sa is None else f'{sa:.3f}s':>9} "
            f"{'' if sb is None else f'{sb:.3f}s':>9} "
            f"{row.get('delta', 0.0):>+8.3f}s  {row.get('cause', '?')}"
            + (f" ({'; '.join(extras)})" if extras else "")
        )
    lines.append(
        f"{'total':<30} {diff.get('total_seconds_a', 0.0):>8.3f}s "
        f"{diff.get('total_seconds_b', 0.0):>8.3f}s "
        f"{diff.get('total_delta', 0.0):>+8.3f}s"
    )
    return "\n".join(lines)


# -- serve access-log analysis ----------------------------------------------

#: Format tag every ``serve-access/v1`` log line carries.
ACCESS_LOG_FORMAT = "serve-access/v1"


def _nearest_rank(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def load_access_log(path: Union[str, Path]) -> Dict[str, Any]:
    """Aggregate a serve access log into a summary document.

    Reads the rotated ``.1`` backup first when present (its lines are
    older), then the live file.  Every line must be a
    ``serve-access/v1`` record; a malformed line raises
    :class:`ValueError` naming the file and line number.  Sampled logs
    (``sample > 1``) report ``estimated_requests`` scaled back up by
    each line's recorded sampling factor — deterministic sampling makes
    that an exact expectation, not a guess.
    """
    path = Path(path)
    sources = [p for p in (path.with_name(path.name + ".1"), path) if p.exists()]
    if not sources:
        raise OSError(f"no access log at {path}")

    lines = 0
    estimated = 0
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    samples: Set[int] = set()
    routes: Dict[str, Dict[str, Any]] = {}
    heat: Dict[int, int] = {}
    for source in sources:
        with source.open(encoding="utf-8") as handle:
            for lineno, raw in enumerate(handle, start=1):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{source}:{lineno}: not JSON ({exc.msg})"
                    ) from None
                if record.get("format") != ACCESS_LOG_FORMAT:
                    raise ValueError(
                        f"{source}:{lineno}: not a {ACCESS_LOG_FORMAT} record"
                    )
                lines += 1
                sample = max(1, int(record.get("sample", 1)))
                samples.add(sample)
                estimated += sample
                t = record.get("t")
                if isinstance(t, (int, float)):
                    t_min = t if t_min is None else min(t_min, t)
                    t_max = t if t_max is None else max(t_max, t)
                route = str(record.get("route", "unmatched"))
                row = routes.setdefault(
                    route,
                    {"requests": 0, "errors": 0, "bytes": 0, "latencies": []},
                )
                row["requests"] += 1
                if int(record.get("status", 0)) >= 400:
                    row["errors"] += 1
                row["bytes"] += int(record.get("bytes", 0))
                row["latencies"].append(float(record.get("us", 0.0)))
                asn = record.get("asn")
                if asn is not None:
                    heat[int(asn)] = heat.get(int(asn), 0) + 1

    for row in routes.values():
        latencies = sorted(row.pop("latencies"))
        row["p50_us"] = round(_nearest_rank(latencies, 0.50), 1)
        row["p90_us"] = round(_nearest_rank(latencies, 0.90), 1)
        row["p99_us"] = round(_nearest_rank(latencies, 0.99), 1)
        row["mean_us"] = round(
            sum(latencies) / len(latencies) if latencies else 0.0, 1
        )
    return {
        "lines": lines,
        "estimated_requests": estimated,
        "samples": sorted(samples),
        "span_seconds": (
            round(t_max - t_min, 3)
            if t_min is not None and t_max is not None
            else 0.0
        ),
        "routes": {route: routes[route] for route in sorted(routes)},
        "asn_heat": sorted(heat.items(), key=lambda kv: (-kv[1], kv[0])),
    }


def render_serve_log(summary: Mapping[str, Any], *, top: int = 10) -> str:
    """Human-readable report of a :func:`load_access_log` summary."""
    samples = summary.get("samples") or [1]
    sampled = (
        ""
        if samples == [1]
        else f", 1-in-{'/'.join(str(s) for s in samples)} sampled "
        f"(~{summary.get('estimated_requests', 0)} requests)"
    )
    lines = [
        f"Access log: {summary.get('lines', 0)} lines over "
        f"{summary.get('span_seconds', 0.0):.1f}s{sampled}",
        f"{'route':<28} {'reqs':>7} {'errs':>6} "
        f"{'p50':>9} {'p90':>9} {'p99':>9} {'mean':>9}",
    ]
    for route, row in summary.get("routes", {}).items():
        lines.append(
            f"{route:<28} {row.get('requests', 0):>7} {row.get('errors', 0):>6} "
            f"{row.get('p50_us', 0.0) / 1000:>7.2f}ms "
            f"{row.get('p90_us', 0.0) / 1000:>7.2f}ms "
            f"{row.get('p99_us', 0.0) / 1000:>7.2f}ms "
            f"{row.get('mean_us', 0.0) / 1000:>7.2f}ms"
        )
    heat = list(summary.get("asn_heat", []))[: max(0, top)]
    if heat:
        lines.append(f"top {len(heat)} ASNs by request count:")
        for asn, count in heat:
            lines.append(f"  AS{asn:<12} {count}")
    return "\n".join(lines)
