"""Structured observability: span tracing, metrics, run manifests.

Longitudinal measurement work lives or dies on provenance — being able
to say *which inputs, code version, and stage path produced this
artifact, and how long every step took*.  Historic-attribution services
(Back-to-the-Future Whois and kin) must justify every derived record;
this module gives the reproduction pipeline the same receipts:

* :class:`Tracer` — nested spans with stage/component/engine/backend
  attributes, monotonic timings, and free-form annotations (cache
  hit/miss, quarantines, retries, degradations, injected faults).
  Thread-safe (per-thread span stacks over one shared trace) and
  process-pool-safe: worker-side spans are exported as plain dicts,
  travel back with the task results, and :meth:`Tracer.adopt` re-parents
  them into the parent trace.
* :class:`MetricsRegistry` — counters, gauges, and histograms
  (``cache.hits``, ``cache.verify_failures``, ``executor.retries``,
  ``bgp.contributions``, per-stage wall histograms, ...) behind one
  lock; worker snapshots merge additively via :meth:`merge_snapshot`.
* Run manifests — :func:`build_run_manifest` assembles the config hash,
  cache-key versions, engine/backend choices, fault-injection settings,
  ``git describe``, and a per-stage span digest into a deterministic
  JSON document: identical config and inputs reproduce the manifest
  byte-for-byte (timestamps are opt-in precisely so the default stays
  reproducible).

All three artifacts are written atomically (unique temp file +
``os.replace``), the same publish discipline the artifact cache uses,
so a crashed run can never leave a torn trace or manifest next to the
exported datasets.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import subprocess
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Union

__all__ = [
    "TRACE_FORMAT",
    "RUN_MANIFEST_FORMAT",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "BUCKETS_PER_DECADE",
    "HISTOGRAM_BUCKET_BOUNDS",
    "OVERFLOW_BUCKET",
    "bucket_index",
    "quantile_from_buckets",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
    "write_json_atomic",
    "write_jsonl_atomic",
    "git_describe",
    "build_run_manifest",
    "write_run_manifest",
]

#: Format tag of the JSON-lines trace file (first line of every file).
TRACE_FORMAT = "pipeline-trace/v1"

#: Format tag of the per-run manifest document.
RUN_MANIFEST_FORMAT = "run-manifest/v1"


# -- atomic JSON writers ----------------------------------------------------

_UNIQUE = itertools.count()


def _write_text_atomic(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` via a unique temp file + ``os.replace``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}.{next(_UNIQUE)}")
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def write_json_atomic(path: Union[str, Path], document: Any) -> Path:
    """Atomically write one canonical (sorted-key) JSON document."""
    return _write_text_atomic(
        path, json.dumps(document, sort_keys=True, indent=2) + "\n"
    )


def write_jsonl_atomic(path: Union[str, Path], lines: Sequence[Any]) -> Path:
    """Atomically write one JSON document per line."""
    text = "".join(
        json.dumps(line, sort_keys=True, separators=(",", ":")) + "\n"
        for line in lines
    )
    return _write_text_atomic(path, text)


# -- spans ------------------------------------------------------------------


class Span:
    """One timed operation in a trace.

    Mutable by design: stage code sets ``items`` (fan-out width) after
    the block exits, and annotations arrive while the span is open.
    Attribute access is cheap; cross-thread mutation is guarded by the
    owning tracer's lock where it matters (annotation, finishing).
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "kind",
        "attrs",
        "annotations",
        "start_wall",
        "seconds",
        "pid",
        "finished",
        "_start_mono",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        *,
        kind: str = "span",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.annotations: List[str] = []
        self.start_wall = time.time()
        self._start_mono = time.perf_counter()
        self.seconds = 0.0
        self.pid = os.getpid()
        self.finished = False

    @property
    def items(self) -> Optional[int]:
        """Fan-out width (kept as an attribute for StageTiming parity)."""
        return self.attrs.get("items")

    @items.setter
    def items(self, value: Optional[int]) -> None:
        if value is None:
            self.attrs.pop("items", None)
        else:
            self.attrs["items"] = value

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def annotate(self, message: str) -> None:
        self.annotations.append(str(message))

    def to_dict(self) -> Dict[str, Any]:
        """The span's JSON-lines representation."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": round(self.start_wall, 6),
            "seconds": round(self.seconds, 6),
            "attrs": self.attrs,
            "annotations": list(self.annotations),
            "pid": self.pid,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.span_id} {self.name!r} kind={self.kind} "
            f"{'finished' if self.finished else 'open'}>"
        )


class Tracer:
    """A thread-safe collector of nested spans forming one trace.

    Every tracer owns a root span (named ``run`` by default); spans
    opened with :meth:`span` nest under the opener thread's innermost
    open span, falling back to the root, so concurrent threads build
    disjoint subtrees of one tree.  Worker processes build their own
    tracers and ship exported span dicts back; :meth:`adopt` renumbers
    them into this trace under the caller's current span.
    """

    def __init__(
        self, *, root_name: str = "run", root_kind: str = "root", **root_attrs: Any
    ) -> None:
        self._lock = threading.Lock()
        self._ids = itertools.count(2)
        self._local = threading.local()
        self.trace_id = os.urandom(8).hex()
        #: Degradation/event log: the runtime's quarantines, retries,
        #: fallbacks.  :class:`~repro.runtime.profiling.PipelineStats`
        #: exposes this very list as its ``events`` attribute.
        self.events: List[str] = []
        self.root = Span(1, None, root_name, kind=root_kind, attrs=root_attrs)
        #: Spans in finish order (the root is appended at export time).
        self.spans: List[Span] = []

    # -- span lifecycle ------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Span:
        """The opener thread's innermost open span (root if none)."""
        stack = self._stack()
        return stack[-1] if stack else self.root

    def start_span(
        self,
        name: str,
        *,
        kind: str = "span",
        items: Optional[int] = None,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        with self._lock:
            span_id = next(self._ids)
        parent = parent if parent is not None else self.current()
        span = Span(span_id, parent.span_id, name, kind=kind, attrs=attrs)
        if items is not None:
            span.items = items
        self._stack().append(span)
        return span

    def finish_span(self, span: Span) -> None:
        if span.finished:
            return
        span.seconds = time.perf_counter() - span._start_mono
        span.finished = True
        stack = self._stack()
        if span in stack:
            # close any orphaned children left open by an exception
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        with self._lock:
            self.spans.append(span)

    @contextmanager
    def span(
        self,
        name: str,
        *,
        kind: str = "span",
        items: Optional[int] = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        span = self.start_span(name, kind=kind, items=items, **attrs)
        try:
            yield span
        finally:
            self.finish_span(span)

    def record(
        self,
        name: str,
        seconds: float,
        *,
        kind: str = "span",
        items: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Append an externally timed span (already finished)."""
        with self._lock:
            span_id = next(self._ids)
        span = Span(span_id, self.current().span_id, name, kind=kind, attrs=attrs)
        if items is not None:
            span.items = items
        span.seconds = float(seconds)
        span.finished = True
        with self._lock:
            self.spans.append(span)
        return span

    # -- annotations and events ----------------------------------------

    def note(self, message: str) -> None:
        """Record one runtime event and annotate the current span."""
        message = str(message)
        with self._lock:
            self.events.append(message)
        self.current().annotate(message)

    def annotate_current(self, message: str) -> None:
        """Annotate the current span without logging an event."""
        self.current().annotate(message)

    def subscribe_faults(self, injector: Any) -> Callable[[], None]:
        """Mirror every fired fault of ``injector`` into this trace.

        Each :class:`~repro.runtime.faults.FaultEvent` becomes a
        ``fault: site=... kind=... detail=...`` annotation on the span
        active when the fault fired, closing the loop between the
        injection harness and the emitted trace.  Returns a detach
        callable (tests subscribe short-lived tracers).
        """

        def _on_fire(event: Any) -> None:
            self.annotate_current(
                f"fault: site={event.site} kind={event.kind} "
                f"detail={event.detail}"
            )

        injector.listeners.append(_on_fire)

        def _detach() -> None:
            try:
                injector.listeners.remove(_on_fire)
            except ValueError:
                pass

        return _detach

    # -- worker-span merging -------------------------------------------

    def export_spans(self) -> List[Dict[str, Any]]:
        """Every span (root first) as plain dicts, for cross-process travel."""
        root = self.root.to_dict()
        root["seconds"] = round(time.perf_counter() - self.root._start_mono, 6)
        with self._lock:
            return [root] + [span.to_dict() for span in self.spans]

    def adopt(
        self,
        exported: Sequence[Mapping[str, Any]],
        *,
        parent: Optional[Span] = None,
    ) -> List[Span]:
        """Graft worker-exported spans into this trace.

        Span ids are renumbered into this trace's sequence; internal
        parent/child links are preserved, and spans whose parent is not
        part of the export (the worker's roots) are re-parented under
        ``parent`` (default: the caller's current span).
        """
        parent = parent if parent is not None else self.current()
        id_map: Dict[Any, int] = {}
        adopted: List[Span] = []
        with self._lock:
            for record in exported:
                id_map[record.get("span_id")] = next(self._ids)
        for record in exported:
            old_parent = record.get("parent_id")
            new_parent = id_map.get(old_parent, parent.span_id)
            span = Span(
                id_map[record.get("span_id")],
                new_parent,
                str(record.get("name", "task")),
                kind=str(record.get("kind", "task")),
                attrs=dict(record.get("attrs", {})),
            )
            span.start_wall = float(record.get("start", span.start_wall))
            span.seconds = float(record.get("seconds", 0.0))
            span.annotations = [str(a) for a in record.get("annotations", [])]
            span.pid = int(record.get("pid", span.pid))
            span.finished = True
            adopted.append(span)
        with self._lock:
            self.spans.extend(adopted)
        return adopted

    # -- export --------------------------------------------------------

    def stage_spans(self) -> List[Span]:
        """Finished stage spans in finish order (the profile view)."""
        with self._lock:
            return [span for span in self.spans if span.kind == "stage"]

    def to_lines(self) -> List[Dict[str, Any]]:
        """The JSON-lines trace: a header line, then one line per span."""
        root = self.root.to_dict()
        root["seconds"] = round(time.perf_counter() - self.root._start_mono, 6)
        header = {
            "format": TRACE_FORMAT,
            "trace_id": self.trace_id,
            "spans": len(self.spans) + 1,
        }
        with self._lock:
            return [header, root] + [span.to_dict() for span in self.spans]

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Atomically write the trace as JSON lines."""
        return write_jsonl_atomic(path, self.to_lines())

    def stage_digest(self) -> Dict[str, Any]:
        """A deterministic digest of the stage path this run took.

        Covers stage names, order, fan-out widths, and non-timing
        attributes — never durations, pids, or span ids — so identical
        configs and inputs produce identical digests.
        """
        rows = []
        for span in self.stage_spans():
            attrs = {
                k: v for k, v in sorted(span.attrs.items())
                if not isinstance(v, float)
            }
            rows.append({"name": span.name, "attrs": attrs})
        blob = json.dumps(rows, sort_keys=True, separators=(",", ":"))
        return {
            "stages": rows,
            "sha256": hashlib.sha256(blob.encode("utf-8")).hexdigest(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tracer {self.trace_id} spans={len(self.spans)}>"


# -- metrics ----------------------------------------------------------------


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value


#: Bucket resolution of every histogram: 4 log-scaled buckets per
#: decade, a ~78% relative span per bucket (bound ratio 10^(1/4)), so a
#: bucket-derived quantile estimate is off by at most half a bucket —
#: a factor of 10^(1/8) ≈ 1.33 — from the true sample quantile.
BUCKETS_PER_DECADE = 4

#: Shared upper bucket bounds (inclusive, ``le`` semantics), fixed for
#: every histogram so worker snapshots merge by plain per-bucket
#: addition.  The span 1e-4 .. 1e7 covers both unit conventions in use:
#: stage walls in seconds (0.1ms .. months) and latencies in µs
#: (sub-µs .. 10s).  Values above the last bound land in the overflow
#: bucket; values at or below the first bound land in bucket 0.
HISTOGRAM_BUCKET_BOUNDS: Sequence[float] = tuple(
    10.0 ** (k / BUCKETS_PER_DECADE) for k in range(-16, 29)
)

#: Index of the +Inf overflow bucket (one past the bounded buckets).
OVERFLOW_BUCKET = len(HISTOGRAM_BUCKET_BOUNDS)


def bucket_index(value: float) -> int:
    """The bucket a value falls in: first ``i`` with value <= bounds[i]."""
    return bisect_left(HISTOGRAM_BUCKET_BOUNDS, value)


def quantile_from_buckets(
    buckets: Union[Sequence[int], Mapping[Any, int]],
    q: float,
    *,
    count: Optional[int] = None,
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
) -> float:
    """Estimate the q-th quantile from per-bucket counts.

    ``buckets`` is either the dense per-bucket count list or the sparse
    ``{index: count}`` mapping a snapshot carries.  Nearest-rank over
    the cumulative counts picks the bucket — using the same
    ``round(q * (n - 1))`` zero-based rank convention as the load
    generator's client-side percentiles, so the two planes agree on
    which observation a quantile names — and the estimate is the
    geometric midpoint of its bounds (the point minimising worst-case
    relative error), clamped into ``[minimum, maximum]`` when the
    histogram's observed extremes are known.
    """
    dense = [0] * (OVERFLOW_BUCKET + 1)
    if isinstance(buckets, Mapping):
        for key, n in buckets.items():
            dense[int(key)] += int(n)
    else:
        for i, n in enumerate(buckets):
            dense[i] += int(n)
    total = int(count) if count is not None else sum(dense)
    if total <= 0:
        return 0.0
    rank = max(0, min(total - 1, round(q * (total - 1)))) + 1
    cum = 0
    estimate = 0.0
    for i, n in enumerate(dense):
        cum += n
        if cum >= rank:
            if i >= OVERFLOW_BUCKET:
                estimate = (
                    maximum if maximum is not None
                    else HISTOGRAM_BUCKET_BOUNDS[-1]
                )
            elif i == 0:
                estimate = HISTOGRAM_BUCKET_BOUNDS[0]
            else:
                lo = HISTOGRAM_BUCKET_BOUNDS[i - 1]
                hi = HISTOGRAM_BUCKET_BOUNDS[i]
                estimate = (lo * hi) ** 0.5
            break
    if minimum is not None:
        estimate = max(estimate, minimum)
    if maximum is not None:
        estimate = min(estimate, maximum)
    return estimate


class Histogram:
    """A streaming summary of observations: count / sum / min / max plus
    fixed log-scaled bucket counts (:data:`HISTOGRAM_BUCKET_BOUNDS`).

    The bucket layout is process-invariant, so two histograms merge by
    adding bucket counts — the property the worker-snapshot round trip
    (:meth:`MetricsRegistry.merge_snapshot`) relies on — and server-side
    quantiles (p50/p90/p99) derive from the counts via
    :func:`quantile_from_buckets` with bounded relative error.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.buckets = [0] * (OVERFLOW_BUCKET + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.buckets[bucket_index(value)] += 1

    def quantile(self, q: float) -> float:
        """Bucket-derived quantile estimate (0.0 for an empty histogram)."""
        return quantile_from_buckets(
            self.buckets, q,
            count=self.count,
            minimum=self.minimum if self.count else None,
            maximum=self.maximum if self.count else None,
        )

    def snapshot(self) -> Dict[str, Any]:
        if self.count == 0:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "buckets": {},
            }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.total / self.count,
            "buckets": {
                str(i): n for i, n in enumerate(self.buckets) if n
            },
        }


class MetricsRegistry:
    """Thread-safe registry of named counters, gauges, and histograms.

    Process-pool fan-outs snapshot the worker-side registry and merge it
    back additively with :meth:`merge_snapshot`, so metric totals
    survive the same round trip worker spans do.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            return counter

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
            return gauge

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            return hist

    def inc(self, name: str, n: int = 1) -> None:
        """Shorthand: bump a counter."""
        self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        """Shorthand: add one histogram observation."""
        self.histogram(name).observe(value)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready view of every metric."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
                "histograms": {
                    k: h.snapshot() for k, h in sorted(self._histograms.items())
                },
            }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a worker snapshot in: counters and histograms add,
        gauges take the incoming value (last writer wins)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            count = int(summary.get("count", 0))
            if count == 0:
                continue
            with self._lock:
                hist.count += count
                hist.total += float(summary.get("sum", 0.0))
                hist.minimum = min(hist.minimum, float(summary.get("min", 0.0)))
                hist.maximum = max(hist.maximum, float(summary.get("max", 0.0)))
                for key, n in (summary.get("buckets") or {}).items():
                    hist.buckets[int(key)] += int(n)

    def clear(self) -> None:
        """Drop every metric (in place, so shared references survive)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-global registry: the cache, executor, and fault injector
#: report here by default, so zero-configuration runs still aggregate.
_GLOBAL_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global default registry."""
    return _GLOBAL_METRICS


def reset_metrics() -> MetricsRegistry:
    """Clear the global registry in place (same object) and return it."""
    _GLOBAL_METRICS.clear()
    return _GLOBAL_METRICS


def resolve_metrics(metrics: Optional[MetricsRegistry]) -> MetricsRegistry:
    """``None`` → the process-global registry, else pass through."""
    return metrics if metrics is not None else _GLOBAL_METRICS


# -- run manifests ----------------------------------------------------------


def git_describe(root: Union[str, Path, None] = None) -> Optional[str]:
    """``git describe --always --dirty`` of the repo, or ``None``."""
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=str(root) if root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def build_run_manifest(
    *,
    config: Any = None,
    settings: Optional[Mapping[str, Any]] = None,
    stats: Any = None,
    git_root: Union[str, Path, None] = None,
    clock: Optional[Callable[[], float]] = None,
) -> Dict[str, Any]:
    """Assemble the provenance manifest of one pipeline run.

    The manifest answers "which inputs, code version, and stage path
    produced these datasets": the config's canonical fingerprint and
    cache-key hash, every cache-key version tag, the engine/backend
    settings the caller passes, the ambient fault-injection settings,
    ``git describe``, and the tracer's per-stage span digest.

    Deterministic by construction: identical config + settings + stage
    path yield a byte-identical document.  Pass ``clock`` (e.g.
    ``time.time``) to opt in to a ``generated_at`` timestamp — it is
    excluded from the identity digest either way.
    """
    # Call-time import: the cache module imports this one for metrics.
    from .cache import (
        ACTIVITY_TABLE_VERSION,
        BGP_RECORDS_VERSION,
        MANIFEST_FORMAT,
        PIPELINE_VERSION,
        cache_key,
        fingerprint,
    )
    from .faults import ENV_RATE, ENV_SEED, ENV_SITES, SITES

    seed_text = os.environ.get(ENV_SEED)
    fault_injection: Optional[Dict[str, Any]] = None
    if seed_text:
        sites_text = os.environ.get(ENV_SITES)
        fault_injection = {
            "seed": int(seed_text),
            "rate": float(os.environ.get(ENV_RATE) or 0.05),
            "sites": sorted(
                s.strip() for s in sites_text.split(",") if s.strip()
            ) if sites_text else sorted(SITES),
        }

    manifest: Dict[str, Any] = {
        "format": RUN_MANIFEST_FORMAT,
        "config": fingerprint(config) if config is not None else None,
        "config_hash": cache_key(config=config) if config is not None else None,
        "cache_versions": {
            "pipeline": PIPELINE_VERSION,
            "activity_table": ACTIVITY_TABLE_VERSION,
            "bgp_records": BGP_RECORDS_VERSION,
            "entry_manifest": MANIFEST_FORMAT,
        },
        "settings": fingerprint(dict(settings)) if settings is not None else {},
        "fault_injection": fault_injection,
        "git": git_describe(git_root) or "unknown",
        "backend": getattr(stats, "backend", None),
        "span_digest": (
            stats.tracer.stage_digest()
            if stats is not None and getattr(stats, "tracer", None) is not None
            else None
        ),
        "events": [str(e) for e in getattr(stats, "events", [])],
    }
    blob = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
    manifest["digest"] = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    if clock is not None:
        manifest["generated_at"] = clock()
    return manifest


def write_run_manifest(path: Union[str, Path], manifest: Mapping[str, Any]) -> Path:
    """Atomically write a manifest document (canonical JSON)."""
    return write_json_atomic(path, dict(manifest))
