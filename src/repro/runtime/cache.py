"""Content-addressed on-disk cache for pipeline artifacts.

Back-to-the-Future-Whois-style services answer historical queries from
precomputed state instead of re-deriving the world per request; the
artifact cache gives this pipeline the same property.  A cache entry is
addressed by a SHA-256 over the *content that determines the artifact*:
the full :class:`~repro.simulation.config.WorldConfig`, the
:class:`~repro.rir.pitfalls.PitfallConfig`, the lifetime-inference
parameters, and a pipeline version tag — so any change to any input
(or to the pipeline semantics, via the tag) misses and rebuilds, while
repeated builds of the same world hit and skip everything.

Entries are pickled with the highest protocol and written atomically
(unique temp file + ``os.replace``), so concurrent builders — e.g.
pytest-xdist workers racing on the benchmark bundle — can share one
cache directory: both build, one rename wins, nobody observes a torn
file.  Loads run with the cyclic garbage collector paused: unpickling
millions of small interval/record objects is an order of magnitude
faster without intermediate GC passes, and that speed is the whole
point of a hit.

Precomputed state is only useful if it can be *trusted* after crashes,
so every entry carries a sidecar manifest (payload SHA-256, byte
length, pipeline version) that is checked on load when ``verify`` is
``"sha256"`` (the default).  An entry whose bytes do not match its
manifest — a torn write that a crash made visible, bit rot, a
truncated file — is moved to a ``quarantine/`` directory for post
mortems and treated as a miss, and the artifact is rebuilt; an entry
is never deleted blind, and a corrupt load can never return a wrong
artifact silently.  Failed stores degrade gracefully by default (the
built artifact is returned, the entry is simply not persisted, and the
failure is surfaced in :attr:`ArtifactCache.events`); strict callers
get a typed :class:`CacheStoreError` instead.
"""

from __future__ import annotations

import dataclasses
import gc
import hashlib
import itertools
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .faults import USE_ENV_FAULTS, FaultInjector, resolve_faults
from .observability import MetricsRegistry, resolve_metrics

__all__ = [
    "PIPELINE_VERSION",
    "ACTIVITY_TABLE_VERSION",
    "BGP_RECORDS_VERSION",
    "DELEGATION_TABLE_VERSION",
    "MANIFEST_FORMAT",
    "USE_ENV_FAULTS",
    "CacheError",
    "CacheStoreError",
    "ArtifactCache",
    "fingerprint",
    "cache_key",
    "dumps_with_gc_paused",
    "loads_with_gc_paused",
]

#: Bump whenever the pipeline's semantics change in a way that makes
#: previously cached bundles stale (new restoration step, changed
#: lifetime rules, ...).  Part of every cache key.
PIPELINE_VERSION = "2026.08-1"

#: Version tag of the ``activity-table`` bundle component (the per-ASN
#: :class:`~repro.lifetimes.bgp.OperationalActivity` tables the BGP
#: activity engines produce).  Part of every activity-table cache key;
#: bump when the engines' output semantics change.  The *engine name*
#: is deliberately not part of the key: columnar and object-stream
#: builds are contractually byte-identical, so either may serve a hit
#: for the other — the scaling benchmark's determinism check relies on
#: exactly this property.
ACTIVITY_TABLE_VERSION = "activity-table/v1"

#: Version tag of the packed BGP records artifact (the zero-copy
#: columnar element encoding of :mod:`repro.bgp.records`).  Part of
#: every records cache key — it doubles as the container's format tag,
#: so a format change both invalidates the key and is rejected by the
#: container parser.  Stored as a *raw* cache entry (``.raw``), not a
#: pickle: the artifact file on disk IS the mmap-able container.
BGP_RECORDS_VERSION = "bgp-records/v1"

#: Version tag of the packed delegation-restoration table (the
#: zero-copy columnar encoding of :mod:`repro.restoration.table`).
#: Part of every delegation-table cache key and, like the records tag,
#: doubles as the container's format tag: a format change invalidates
#: the key and is rejected by the parser.  Stored raw (``.raw``), not
#: pickled — the cache entry on disk IS the mmap-able container the
#: ``process:N`` restoration fan-out re-opens.
DELEGATION_TABLE_VERSION = "delegation-table/v1"

#: Format tag of the per-entry sidecar manifest.
MANIFEST_FORMAT = "artifact-manifest/v1"

#: Payloads are pickled inside a tagged envelope so that a legitimately
#: cached ``None`` (or any falsy artifact) is distinguishable from a
#: miss — :meth:`ArtifactCache.get_or_build` must not rebuild forever
#: just because the builder returned ``None``.
_ENVELOPE_TAG = "repro/artifact-envelope/v1"

#: Internal miss marker (never a valid artifact).
_MISS = object()

#: Per-process counter making temp/quarantine names unique across the
#: threads of one process (the pid alone collides under pytest-xdist's
#: in-process threads and any threaded caller).
_UNIQUE = itertools.count()


class CacheError(Exception):
    """Base class for typed artifact-cache failures."""


class CacheStoreError(CacheError):
    """An artifact could not be persisted (and the caller asked to know)."""


def fingerprint(obj: Any) -> Any:
    """Reduce configs to a canonical JSON-compatible structure.

    Dataclasses become ``{"__class__": name, **fields}`` so two config
    types with identical field values still key differently; dicts are
    emitted with sorted keys; tuples and sets become lists (sets
    sorted).  Raises ``TypeError`` for anything non-canonical (lambdas,
    open files, ...), which is the safe failure mode for a cache key.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__class__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = fingerprint(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        return {str(k): fingerprint(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [fingerprint(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return [fingerprint(v) for v in sorted(obj)]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot fingerprint {type(obj).__name__} for a cache key")


def cache_key(**parts: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of keyword parts."""
    canonical = json.dumps(
        fingerprint(parts), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def dumps_with_gc_paused(obj: Any) -> bytes:
    """``pickle.dumps`` with the cyclic collector paused.

    Serializing object graphs with hundreds of thousands of small
    records triggers repeated generational collections whose passes
    scan the very objects being written; pausing the collector for the
    duration is an order-of-magnitude win and safe (nothing here
    creates garbage cycles).
    """
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        if gc_was_enabled:
            gc.enable()


def loads_with_gc_paused(blob: bytes) -> Any:
    """``pickle.loads`` with the cyclic collector paused (see above)."""
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return pickle.loads(blob)
    finally:
        if gc_was_enabled:
            gc.enable()


class ArtifactCache:
    """A directory of content-addressed pickled artifacts.

    Parameters
    ----------
    verify:
        ``"sha256"`` (default) checks every loaded payload against its
        sidecar manifest; ``"off"`` trusts unpickling alone (manifests
        are still written, so the same directory can be re-opened
        verified later).
    faults:
        A :class:`~repro.runtime.faults.FaultInjector` to consult at
        the cache's failure-prone points, ``None`` for no injection, or
        the default :data:`USE_ENV_FAULTS` to pick up the ambient
        environment-configured injector (the CI fault-injection run).
    strict_store:
        When true, a failed :meth:`store` raises
        :class:`CacheStoreError` instead of degrading to "built but not
        persisted".
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        verify: str = "sha256",
        faults: Any = USE_ENV_FAULTS,
        strict_store: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if verify not in ("off", "sha256"):
            raise ValueError(f"unknown verify mode {verify!r}")
        self.root = Path(root)
        self.verify = verify
        self.faults: Optional[FaultInjector] = resolve_faults(faults)
        self.strict_store = strict_store
        #: Where counters (``cache.hits``, ``cache.verify_failures``,
        #: ...) aggregate; ``None`` means the process-global registry.
        self.metrics = metrics
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.quarantined = 0
        self.store_failures = 0
        #: Human-readable log of degradations (quarantines, failed
        #: stores); pipeline drivers drain this into
        #: :attr:`~repro.runtime.profiling.PipelineStats.events`.
        self.events: List[str] = []

    def _inc(self, metric: str, n: int = 1) -> None:
        resolve_metrics(self.metrics).inc(metric, n)

    # -- paths ---------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def manifest_path_for(self, key: str) -> Path:
        return self.root / f"{key}.manifest.json"

    def raw_path_for(self, key: str) -> Path:
        """Payload path of a *raw* entry (bytes stored as-is, no pickle
        envelope) — e.g. the mmap-able packed BGP records container."""
        return self.root / f"{key}.raw"

    def raw_manifest_path_for(self, key: str) -> Path:
        return self.root / f"{key}.raw.manifest.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def key_for(self, **parts: Any) -> str:
        """Key for artifact-determining parts (version tag included)."""
        parts.setdefault("pipeline_version", PIPELINE_VERSION)
        return cache_key(**parts)

    # -- loading -------------------------------------------------------

    def _read_payload(self, path: Path) -> Optional[bytes]:
        try:
            if self.faults is not None:
                self.faults.on_read(path)
            return path.read_bytes()
        except OSError:
            return None

    def _read_manifest(self, manifest_path: Path) -> Optional[Dict[str, Any]]:
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return manifest if isinstance(manifest, dict) else None

    @staticmethod
    def _manifest_matches(manifest: Optional[Dict[str, Any]], blob: bytes) -> bool:
        return (
            manifest is not None
            and manifest.get("length") == len(blob)
            and manifest.get("sha256") == hashlib.sha256(blob).hexdigest()
        )

    def _quarantine(self, path: Path, observed: bytes) -> None:
        """Move the bad entry aside — but only the bytes actually read.

        A plain ``unlink(path)`` races with concurrent builders: a
        fresh, valid entry that another process just ``os.replace``-d
        in would be deleted on the evidence of stale bytes.  Instead:
        move the entry into ``quarantine/`` (atomic), then verify the
        moved bytes are the ones this reader judged corrupt; if they
        are not, a fresh entry raced in and is put straight back.
        """
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            return  # cannot quarantine; the rebuild's store overwrites it
        qpath = self.quarantine_dir / (
            f"{path.name}.{os.getpid()}.{next(_UNIQUE)}"
        )
        try:
            os.replace(path, qpath)
        except OSError:
            return  # already gone (e.g. another reader quarantined it)
        try:
            moved = qpath.read_bytes()
        except OSError:
            return
        if moved != observed:
            # a fresh entry landed between our read and the move:
            # restore it — it was never the corrupt bytes we saw
            try:
                os.replace(qpath, path)
            except OSError:
                pass
            return
        self.quarantined += 1
        self._inc("cache.quarantined")
        self.events.append(
            f"cache: quarantined corrupt entry {path.name} -> {qpath.name}"
        )

    def _verified_payload(
        self,
        key: str,
        path: Path,
        blob: bytes,
        manifest_path: Optional[Path] = None,
    ) -> Optional[bytes]:
        """The payload bytes iff they match the sidecar manifest."""
        if manifest_path is None:
            manifest_path = self.manifest_path_for(key)
        if self._manifest_matches(self._read_manifest(manifest_path), blob):
            return blob
        # One fresh re-read closes the benign race where a concurrent
        # store's two renames (manifest, then payload) were observed
        # halfway through; after both land, fresh reads are consistent.
        fresh = self._read_payload(path)
        manifest = self._read_manifest(manifest_path)
        if fresh is not None and self._manifest_matches(manifest, fresh):
            return fresh
        if manifest is None:
            # Unverifiable, not provably corrupt (legacy entry or a
            # lost manifest): miss, but leave the payload in place for
            # the rebuild's store to overwrite.
            self.events.append(
                f"cache: entry {key[:12]} has no manifest; treating as miss"
            )
            return None
        self.corrupt += 1
        self._inc("cache.verify_failures")
        self.events.append(
            f"cache: entry {key[:12]} failed sha256 verification"
        )
        self._quarantine(path, fresh if fresh is not None else blob)
        return None

    def lookup(self, key: str) -> Any:
        """The cached artifact, or the module-private miss marker.

        Unlike :meth:`load`, a cached ``None`` is distinguishable from
        a miss — this is what :meth:`get_or_build` consults.
        """
        path = self.path_for(key)
        blob = self._read_payload(path)
        if blob is None:
            self.misses += 1
            self._inc("cache.misses")
            return _MISS
        if self.verify == "sha256":
            blob = self._verified_payload(key, path, blob)
            if blob is None:
                self.misses += 1
                self._inc("cache.misses")
                return _MISS
        try:
            obj = loads_with_gc_paused(blob)
        except Exception:
            self.corrupt += 1
            self._inc("cache.verify_failures")
            self.events.append(f"cache: entry {key[:12]} failed to unpickle")
            self._quarantine(path, blob)
            self.misses += 1
            self._inc("cache.misses")
            return _MISS
        self.hits += 1
        self._inc("cache.hits")
        if (
            isinstance(obj, tuple)
            and len(obj) == 2
            and obj[0] == _ENVELOPE_TAG
        ):
            return obj[1]
        return obj  # legacy entry written before envelopes

    def load(self, key: str) -> Optional[Any]:
        """Return the cached artifact, or ``None`` on a miss.

        A corrupt or unreadable entry counts as a miss and is
        quarantined, so a crashed writer can never poison later runs.
        (``None`` is ambiguous here by design — callers caching
        possibly-``None`` artifacts go through :meth:`get_or_build`.)
        """
        value = self.lookup(key)
        return None if value is _MISS else value

    # -- storing -------------------------------------------------------

    def store(
        self, key: str, artifact: Any, *, strict: Optional[bool] = None
    ) -> Optional[Path]:
        """Atomically persist an artifact (payload + manifest).

        On I/O failure (disk full, read-only directory, ...) the
        partially written temp files are always removed; by default the
        failure is recorded in :attr:`events` and ``None`` is returned
        — the pipeline continues with the freshly built artifact,
        merely uncached.  With ``strict`` (or ``strict_store=True`` on
        the cache) a :class:`CacheStoreError` is raised instead.
        """
        strict = self.strict_store if strict is None else strict
        try:
            blob = dumps_with_gc_paused((_ENVELOPE_TAG, artifact))
        except Exception as exc:
            # an unpicklable artifact is a caller bug, never degraded
            raise CacheStoreError(
                f"artifact for {key} is not picklable: {exc}"
            ) from exc
        return self._publish(
            key,
            blob,
            path=self.path_for(key),
            manifest_path=self.manifest_path_for(key),
            kind="pickle",
            strict=strict,
        )

    def store_raw(
        self, key: str, blob: bytes, *, strict: Optional[bool] = None
    ) -> Optional[Path]:
        """Atomically persist raw bytes (no pickle envelope).

        The payload lands at :meth:`raw_path_for` byte-for-byte, so the
        entry can be re-opened zero-copy (``mmap``) by later runs —
        this is how the packed BGP records container is cached.  Same
        manifest/verify/quarantine guarantees as :meth:`store`.
        """
        strict = self.strict_store if strict is None else strict
        return self._publish(
            key,
            bytes(blob),
            path=self.raw_path_for(key),
            manifest_path=self.raw_manifest_path_for(key),
            kind="raw",
            strict=strict,
        )

    def _publish(
        self,
        key: str,
        blob: bytes,
        *,
        path: Path,
        manifest_path: Path,
        kind: str,
        strict: bool,
    ) -> Optional[Path]:
        manifest_blob = json.dumps(
            {
                "format": MANIFEST_FORMAT,
                "kind": kind,
                "sha256": hashlib.sha256(blob).hexdigest(),
                "length": len(blob),
                "pipeline_version": PIPELINE_VERSION,
            },
            sort_keys=True,
        ).encode("utf-8")

        uniq = f"tmp.{os.getpid()}.{next(_UNIQUE)}"
        tmp_payload = self.root / f"{path.name}.{uniq}"
        tmp_manifest = self.root / f"{manifest_path.name}.{uniq}"
        try:
            try:
                self.root.mkdir(parents=True, exist_ok=True)
                if self.faults is not None:
                    self.faults.on_write(tmp_manifest, manifest_blob)
                tmp_manifest.write_bytes(manifest_blob)
                payload_bytes = (
                    blob if self.faults is None else self.faults.mangle_write(blob)
                )
                if self.faults is not None:
                    self.faults.on_write(tmp_payload, payload_bytes)
                tmp_payload.write_bytes(payload_bytes)
                # publish the manifest first, the payload second: the
                # instant a payload becomes visible, a matching
                # manifest is already beside it (the reverse order
                # would widen the mismatch window for verified readers)
                if self.faults is not None:
                    self.faults.on_replace(tmp_manifest, manifest_path)
                os.replace(tmp_manifest, manifest_path)
                if self.faults is not None:
                    self.faults.on_replace(tmp_payload, path)
                os.replace(tmp_payload, path)
            finally:
                # whatever failed above, never leak temp files
                for tmp in (tmp_payload, tmp_manifest):
                    tmp.unlink(missing_ok=True)
            self._inc("cache.stores")
        except OSError as exc:
            self.store_failures += 1
            self._inc("cache.store_failures")
            self.events.append(
                f"cache: store of {key[:12]} failed ({exc}); continuing uncached"
            )
            if strict:
                raise CacheStoreError(
                    f"could not store artifact {key}: {exc}"
                ) from exc
            return None
        return path

    # -- named entries -------------------------------------------------

    @staticmethod
    def _check_name(name: str) -> str:
        if not name or name != Path(name).name or name.startswith("."):
            raise ValueError(f"invalid named cache entry {name!r}")
        return name

    def named_path(self, name: str) -> Path:
        """Payload path of a *named* entry (caller-chosen file name).

        Named entries carry the same sidecar manifest and publish
        discipline as content-addressed ones but live under a stable,
        human-meaningful file name — this is how the serve store's
        index and shard files get atomic, verified, fault-injectable
        writes without inventing a parallel publish path.
        """
        return self.root / self._check_name(name)

    def named_manifest_path(self, name: str) -> Path:
        return self.root / f"{self._check_name(name)}.manifest.json"

    def store_named(
        self, name: str, blob: bytes, *, strict: Optional[bool] = None
    ) -> Optional[Path]:
        """Atomically persist raw bytes under a caller-chosen name.

        Identical guarantees to :meth:`store_raw` (unique temps,
        manifest-first rename order, fault hooks at every write and
        replace, guaranteed temp cleanup) — only the addressing
        differs.
        """
        strict = self.strict_store if strict is None else strict
        return self._publish(
            name,
            bytes(blob),
            path=self.named_path(name),
            manifest_path=self.named_manifest_path(name),
            kind="named",
            strict=strict,
        )

    def load_named(self, name: str) -> Optional[bytes]:
        """Verified bytes of a named entry, or ``None``.

        ``None`` covers both "missing" and "corrupt" (the latter is
        quarantined first); callers that must distinguish retry the
        write and then fail typed — see ``repro.serve.store``.
        """
        path = self.named_path(name)
        blob = self._read_payload(path)
        if blob is None:
            self.misses += 1
            self._inc("cache.misses")
            return None
        if self.verify == "sha256":
            blob = self._verified_payload(
                name, path, blob, manifest_path=self.named_manifest_path(name)
            )
            if blob is None:
                self.misses += 1
                self._inc("cache.misses")
                return None
        self.hits += 1
        self._inc("cache.hits")
        return blob

    def load_raw_path(self, key: str) -> Optional[Path]:
        """Path of a verified raw entry, or ``None`` on a miss.

        Reads the payload once for sha256 verification (when enabled),
        then hands back the *path* rather than the bytes so the caller
        can mmap the entry zero-copy.  Corrupt entries are quarantined
        exactly like pickled ones.
        """
        path = self.raw_path_for(key)
        blob = self._read_payload(path)
        if blob is None:
            self.misses += 1
            self._inc("cache.misses")
            return None
        if self.verify == "sha256":
            blob = self._verified_payload(
                key, path, blob, manifest_path=self.raw_manifest_path_for(key)
            )
            if blob is None:
                self.misses += 1
                self._inc("cache.misses")
                return None
        self.hits += 1
        self._inc("cache.hits")
        return path

    def get_or_build(self, key: str, builder) -> Any:
        """Load the artifact for ``key``, building and storing on a miss.

        Builders may legitimately return ``None``; the envelope makes a
        cached ``None`` hit instead of rebuilding forever.
        """
        value = self.lookup(key)
        if value is _MISS:
            value = builder()
            self.store(key, value)
        return value

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ArtifactCache {self.root} verify={self.verify} "
            f"hits={self.hits} misses={self.misses} "
            f"quarantined={self.quarantined}>"
        )
