"""Content-addressed on-disk cache for pipeline artifacts.

Back-to-the-Future-Whois-style services answer historical queries from
precomputed state instead of re-deriving the world per request; the
artifact cache gives this pipeline the same property.  A cache entry is
addressed by a SHA-256 over the *content that determines the artifact*:
the full :class:`~repro.simulation.config.WorldConfig`, the
:class:`~repro.rir.pitfalls.PitfallConfig`, the lifetime-inference
parameters, and a pipeline version tag — so any change to any input
(or to the pipeline semantics, via the tag) misses and rebuilds, while
repeated builds of the same world hit and skip everything.

Entries are pickled with the highest protocol and written atomically
(temp file + ``os.replace``), so concurrent builders — e.g. pytest-xdist
workers racing on the benchmark bundle — can share one cache directory:
both build, one rename wins, nobody observes a torn file.  Loads run
with the cyclic garbage collector paused: unpickling millions of small
interval/record objects is an order of magnitude faster without
intermediate GC passes, and that speed is the whole point of a hit.
"""

from __future__ import annotations

import dataclasses
import gc
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Optional, Union

__all__ = [
    "PIPELINE_VERSION",
    "ACTIVITY_TABLE_VERSION",
    "ArtifactCache",
    "fingerprint",
    "cache_key",
    "dumps_with_gc_paused",
    "loads_with_gc_paused",
]

#: Bump whenever the pipeline's semantics change in a way that makes
#: previously cached bundles stale (new restoration step, changed
#: lifetime rules, ...).  Part of every cache key.
PIPELINE_VERSION = "2026.08-1"

#: Version tag of the ``activity-table`` bundle component (the per-ASN
#: :class:`~repro.lifetimes.bgp.OperationalActivity` tables the BGP
#: activity engines produce).  Part of every activity-table cache key;
#: bump when the engines' output semantics change.  The *engine name*
#: is deliberately not part of the key: columnar and object-stream
#: builds are contractually byte-identical, so either may serve a hit
#: for the other — the scaling benchmark's determinism check relies on
#: exactly this property.
ACTIVITY_TABLE_VERSION = "activity-table/v1"


def fingerprint(obj: Any) -> Any:
    """Reduce configs to a canonical JSON-compatible structure.

    Dataclasses become ``{"__class__": name, **fields}`` so two config
    types with identical field values still key differently; dicts are
    emitted with sorted keys; tuples and sets become lists (sets
    sorted).  Raises ``TypeError`` for anything non-canonical (lambdas,
    open files, ...), which is the safe failure mode for a cache key.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__class__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = fingerprint(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        return {str(k): fingerprint(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [fingerprint(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return [fingerprint(v) for v in sorted(obj)]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot fingerprint {type(obj).__name__} for a cache key")


def cache_key(**parts: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of keyword parts."""
    canonical = json.dumps(
        fingerprint(parts), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def dumps_with_gc_paused(obj: Any) -> bytes:
    """``pickle.dumps`` with the cyclic collector paused.

    Serializing object graphs with hundreds of thousands of small
    records triggers repeated generational collections whose passes
    scan the very objects being written; pausing the collector for the
    duration is an order-of-magnitude win and safe (nothing here
    creates garbage cycles).
    """
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        if gc_was_enabled:
            gc.enable()


def loads_with_gc_paused(blob: bytes) -> Any:
    """``pickle.loads`` with the cyclic collector paused (see above)."""
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return pickle.loads(blob)
    finally:
        if gc_was_enabled:
            gc.enable()


class ArtifactCache:
    """A directory of content-addressed pickled artifacts."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def key_for(self, **parts: Any) -> str:
        """Key for artifact-determining parts (version tag included)."""
        parts.setdefault("pipeline_version", PIPELINE_VERSION)
        return cache_key(**parts)

    def load(self, key: str) -> Optional[Any]:
        """Return the cached artifact, or ``None`` on a miss.

        A corrupt or unreadable entry counts as a miss and is removed,
        so a crashed writer can never poison later runs.
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            artifact = loads_with_gc_paused(blob)
        except Exception:
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return artifact

    def store(self, key: str, artifact: Any) -> Path:
        """Atomically persist an artifact under its key."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(dumps_with_gc_paused(artifact))
        os.replace(tmp, path)
        return path

    def get_or_build(self, key: str, builder) -> Any:
        """Load the artifact for ``key``, building and storing on a miss."""
        artifact = self.load(key)
        if artifact is None:
            artifact = builder()
            self.store(key, artifact)
        return artifact

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ArtifactCache {self.root} hits={self.hits} misses={self.misses}>"
        )
