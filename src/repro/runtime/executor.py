"""Pluggable execution backends for the dataset pipeline.

The pipeline's expensive stages are embarrassingly parallel along
natural axes — per registry (archive views, the five per-registry
restoration steps), per ASN chunk (lifetime inference), per collector
(dump materialization).  :class:`PipelineExecutor` abstracts *how*
those fan-outs run: :class:`SerialExecutor` runs them inline,
:class:`ProcessPoolBackend` fans them out over worker processes.

The determinism contract (see DESIGN.md) is that every backend yields
**bit-identical** pipeline output:

* ``map`` always returns results in input order, whatever order the
  workers finished in;
* work is split with :func:`chunked`, whose chunk boundaries depend
  only on the item list and the fixed chunk size — never on the worker
  count or on dict iteration order (callers sort their items first);
* tasks are pure functions of their payload (workers never mutate
  shared state), so merging chunk results in input order reproduces
  the serial result exactly.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor as _StdProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

__all__ = [
    "PipelineExecutor",
    "SerialExecutor",
    "ProcessPoolBackend",
    "resolve_executor",
    "chunked",
    "DEFAULT_CHUNK_SIZE",
]

T = TypeVar("T")
R = TypeVar("R")

#: Items per chunk for per-ASN fan-outs.  Fixed (not derived from the
#: worker count) so that chunk boundaries — and therefore merge order —
#: are identical under every backend.
DEFAULT_CHUNK_SIZE = 512

ExecutorSpec = Union[None, int, str, "PipelineExecutor"]


class PipelineExecutor:
    """Base class: how a pipeline fan-out executes.

    Subclasses implement :meth:`map`; everything else (context-manager
    protocol, idempotent :meth:`close`) is shared.
    """

    name = "base"
    jobs = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in input order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "PipelineExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} jobs={self.jobs}>"


class SerialExecutor(PipelineExecutor):
    """Run every task inline, in order (the reference backend)."""

    name = "serial"
    jobs = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


class ProcessPoolBackend(PipelineExecutor):
    """Fan tasks out over a pool of worker processes.

    The pool is created lazily on first use and reused across stages,
    so one ``build_datasets`` run pays the worker start-up cost once.
    Task functions and payloads must be picklable (all pipeline tasks
    are module-level functions over plain dataclasses).
    """

    name = "process"

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is not None and jobs < 2:
            raise ValueError("ProcessPoolBackend needs at least 2 jobs")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 2)
        self._pool: Optional[_StdProcessPool] = None

    def _ensure_pool(self) -> _StdProcessPool:
        if self._pool is None:
            self._pool = _StdProcessPool(max_workers=self.jobs)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        if len(items) == 1:
            # avoid a pointless round-trip through the pool
            return [fn(items[0])]
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def resolve_executor(spec: ExecutorSpec = None) -> PipelineExecutor:
    """Turn a user-facing spec into an executor.

    Accepts ``None`` / ``0`` / ``1`` (serial), an integer job count
    (process pool), the strings ``"serial"``, ``"process"`` or
    ``"process:N"``, or an existing executor (returned unchanged).
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, PipelineExecutor):
        return spec
    if isinstance(spec, bool):  # bool is an int; reject it explicitly
        raise TypeError("executor spec must be None, int, str or PipelineExecutor")
    if isinstance(spec, int):
        return SerialExecutor() if spec <= 1 else ProcessPoolBackend(spec)
    if isinstance(spec, str):
        if spec == "serial":
            return SerialExecutor()
        if spec == "process":
            return ProcessPoolBackend()
        if spec.startswith("process:"):
            return ProcessPoolBackend(int(spec.split(":", 1)[1]))
        raise ValueError(f"unknown executor spec {spec!r}")
    raise TypeError("executor spec must be None, int, str or PipelineExecutor")


def chunked(items: Iterable[T], size: int = DEFAULT_CHUNK_SIZE) -> List[List[T]]:
    """Split items into contiguous chunks of at most ``size``.

    Boundaries depend only on the item sequence and ``size`` — not on
    the executor — which is what keeps parallel merges bit-identical to
    serial runs.
    """
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    out: List[List[T]] = []
    chunk: List[T] = []
    for item in items:
        chunk.append(item)
        if len(chunk) == size:
            out.append(chunk)
            chunk = []
    if chunk:
        out.append(chunk)
    return out
