"""Pluggable execution backends for the dataset pipeline.

The pipeline's expensive stages are embarrassingly parallel along
natural axes — per registry (archive views, the five per-registry
restoration steps), per ASN chunk (lifetime inference), per collector
(dump materialization).  :class:`PipelineExecutor` abstracts *how*
those fan-outs run: :class:`SerialExecutor` runs them inline,
:class:`ProcessPoolBackend` fans them out over worker processes.

The determinism contract (see DESIGN.md) is that every backend yields
**bit-identical** pipeline output:

* ``map`` always returns results in input order, whatever order the
  workers finished in;
* work is split with :func:`chunked`, whose chunk boundaries depend
  only on the item list and the fixed chunk size — never on the worker
  count or on dict iteration order (callers sort their items first);
* tasks are pure functions of their payload (workers never mutate
  shared state), so merging chunk results in input order reproduces
  the serial result exactly.

Purity buys fault tolerance for free: because re-running a task cannot
change its result, a fan-out whose worker pool died
(:class:`~concurrent.futures.process.BrokenProcessPool` — an OOM kill,
a segfaulting extension, a stray ``kill -9``) can simply be retried on
a fresh pool, and if the pool keeps dying the same items can run
inline on the :class:`SerialExecutor` path with identical output.
:class:`ProcessPoolBackend` does exactly that: bounded
retry-with-backoff, then either a typed :class:`WorkerPoolError` or —
with ``on_failure="serial"`` — permanent degradation to inline
execution, surfaced via :attr:`ProcessPoolBackend.events` and from
there in :class:`~repro.runtime.profiling.PipelineStats`.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor as _StdProcessPool
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar, Union

from .faults import USE_ENV_FAULTS, FaultInjector, resolve_faults
from .observability import (
    MetricsRegistry,
    Tracer,
    get_metrics,
    resolve_metrics,
)

__all__ = [
    "PipelineExecutor",
    "SerialExecutor",
    "ProcessPoolBackend",
    "WorkerPoolError",
    "resolve_executor",
    "chunked",
    "per_process",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_RETRIES",
]

T = TypeVar("T")
R = TypeVar("R")

#: Items per chunk for per-ASN fan-outs.  Fixed (not derived from the
#: worker count) so that chunk boundaries — and therefore merge order —
#: are identical under every backend.
DEFAULT_CHUNK_SIZE = 512

#: Default retry budget for transient worker-pool failures: a fan-out
#: gets ``1 + DEFAULT_RETRIES`` attempts before the backend gives up
#: (raises or degrades to serial, per ``on_failure``).
DEFAULT_RETRIES = 2

ExecutorSpec = Union[None, int, str, "PipelineExecutor"]

#: Failures worth retrying on a fresh pool: the pool itself broke
#: (worker death) or the OS refused resources (fork/pipe exhaustion).
#: Exceptions raised by the task function are *not* retried — tasks
#: are pure, so a task error is deterministic and propagates.
_TRANSIENT_POOL_ERRORS = (BrokenProcessPool, OSError)


class WorkerPoolError(RuntimeError):
    """A worker-pool fan-out failed even after its retry budget."""

    def __init__(self, message: str, *, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


def _task_label(fn: Callable) -> str:
    """The span name of one fan-out task."""
    return f"task:{getattr(fn, '__name__', repr(fn))}"


def _traced_call(payload):
    """Worker-side shim: run one task under a fresh tracer and registry.

    Module-level (picklable).  The worker's process-global metrics
    registry is cleared first so a forked worker never re-reports the
    parent's counts; the task's spans and metric deltas travel back
    with the result and are merged into the parent trace/registry by
    :meth:`ProcessPoolBackend.map`.
    """
    fn, item = payload
    metrics = get_metrics()
    metrics.clear()
    tracer = Tracer(root_name=_task_label(fn), root_kind="task", worker=True)
    result = fn(item)
    return result, tracer.export_spans(), metrics.snapshot()


def _traced_call_pickled(blob: bytes):
    """Worker-side shim over pre-pickled ``(fn, item)`` payloads.

    The parent pickles each payload once so it can count the exact
    bytes a fan-out ships (``executor.bytes_shipped``); shipping the
    resulting blob instead of the payload costs only a re-wrap of
    already-serialized bytes.
    """
    return _traced_call(pickle.loads(blob))


class PipelineExecutor:
    """Base class: how a pipeline fan-out executes.

    Subclasses implement :meth:`map`; everything else (context-manager
    protocol, idempotent :meth:`close`, observability attachment) is
    shared.
    """

    name = "base"
    jobs = 1
    #: Observability attachment (see :meth:`instrument`): when a tracer
    #: is set, each fan-out task runs under a ``task`` span — inline
    #: tasks nest under the caller's current span, worker tasks are
    #: exported from the worker and adopted back into the parent trace.
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None

    def instrument(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "PipelineExecutor":
        """Attach a tracer/metrics registry to this executor's fan-outs."""
        if tracer is not None:
            self.tracer = tracer
        if metrics is not None:
            self.metrics = metrics
        return self

    def _map_inline(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Run tasks in the calling thread, spanned when instrumented."""
        tracer = self.tracer
        if tracer is None:
            return [fn(item) for item in items]
        label = _task_label(fn)
        out: List[R] = []
        for item in items:
            with tracer.span(label, kind="task"):
                out.append(fn(item))
        return out

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in input order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "PipelineExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} jobs={self.jobs}>"


class SerialExecutor(PipelineExecutor):
    """Run every task inline, in order (the reference backend)."""

    name = "serial"
    jobs = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return self._map_inline(fn, items)


class ProcessPoolBackend(PipelineExecutor):
    """Fan tasks out over a pool of worker processes.

    The pool is created lazily on first use and reused across stages,
    so one ``build_datasets`` run pays the worker start-up cost once.
    Task functions and payloads must be picklable (all pipeline tasks
    are module-level functions over plain dataclasses).

    Parameters
    ----------
    retries:
        Extra attempts after a transient pool failure
        (:class:`BrokenProcessPool` or an ``OSError`` spawning
        workers); each retry discards the broken pool, sleeps an
        exponentially growing ``backoff``, and re-dispatches the same
        items (safe: tasks are pure).
    on_failure:
        What to do when the retry budget is exhausted: ``"raise"``
        (default) raises :class:`WorkerPoolError`; ``"serial"``
        permanently degrades this backend to inline execution —
        identical output, no workers — and records the degradation in
        :attr:`events`.
    faults:
        Optional :class:`~repro.runtime.faults.FaultInjector` consulted
        before each dispatch (deterministic worker-death drills); the
        default picks up the ambient environment-configured injector.
    """

    name = "process"

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        retries: int = DEFAULT_RETRIES,
        backoff: float = 0.05,
        on_failure: str = "raise",
        faults: Any = USE_ENV_FAULTS,
    ) -> None:
        if jobs is not None and jobs < 2:
            raise ValueError("ProcessPoolBackend needs at least 2 jobs")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if on_failure not in ("raise", "serial"):
            raise ValueError(f"unknown on_failure policy {on_failure!r}")
        # An explicit jobs < 2 is rejected above; an *implicit* resolve
        # on a single-core host degrades to inline execution instead of
        # paying for a pointless 1-worker pool.
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 2)
        self.retries = retries
        self.backoff = backoff
        self.on_failure = on_failure
        self.faults: Optional[FaultInjector] = resolve_faults(faults)
        self._pool: Optional[_StdProcessPool] = None
        #: True once the backend has permanently fallen back to inline
        #: execution (``on_failure="serial"`` after exhausted retries).
        self.degraded = False
        #: Count of transient pool failures survived via retry.
        self.retry_count = 0
        #: Human-readable log of retries/degradations; pipeline drivers
        #: drain this into :class:`~repro.runtime.profiling.PipelineStats`.
        self.events: List[str] = []

    def _ensure_pool(self) -> _StdProcessPool:
        if self._pool is None:
            self._pool = _StdProcessPool(max_workers=self.jobs)
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            # the pool is broken: don't wait for dead workers
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _map_pool(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """One pool fan-out; spans/metrics round-trip when instrumented."""
        pool = self._ensure_pool()
        if self.tracer is None:
            return list(pool.map(fn, items))
        # pickle payloads here (not in pool.map) so the fan-out's exact
        # shipping cost is known at submit time; a stage whose payloads
        # dwarf its compute is the one to convert to descriptor fan-out
        blobs = [
            pickle.dumps((fn, item), protocol=pickle.HIGHEST_PROTOCOL)
            for item in items
        ]
        shipped = sum(len(blob) for blob in blobs)
        raw = list(pool.map(_traced_call_pickled, blobs))
        # merge only after the whole fan-out succeeded, so a retried
        # attempt never leaves half-adopted spans behind
        parent = self.tracer.current()
        metrics = resolve_metrics(self.metrics)
        metrics.inc("executor.bytes_shipped", shipped)
        if parent is not None:
            parent.set_attr(
                "bytes_shipped",
                int(parent.attrs.get("bytes_shipped", 0)) + shipped,
            )
        results: List[R] = []
        for result, spans, snapshot in raw:
            self.tracer.adopt(spans, parent=parent)
            metrics.merge_snapshot(snapshot)
            results.append(result)
        return results

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        if self.degraded or self.jobs < 2 or len(items) == 1:
            # degraded backends, single-core resolves, and single-item
            # fan-outs all skip the pool round-trip entirely
            return self._map_inline(fn, items)
        attempts = self.retries + 1
        last_exc: Optional[BaseException] = None
        for attempt in range(attempts):
            try:
                if self.faults is not None:
                    self.faults.on_worker_dispatch()
                return self._map_pool(fn, items)
            except _TRANSIENT_POOL_ERRORS as exc:
                last_exc = exc
                self._discard_pool()
                remaining = attempts - attempt - 1
                resolve_metrics(self.metrics).inc("executor.pool_failures")
                self.events.append(
                    f"executor: worker pool failed ({type(exc).__name__}: "
                    f"{exc}); {remaining} retr{'y' if remaining == 1 else 'ies'} left"
                )
                if remaining > 0:
                    self.retry_count += 1
                    resolve_metrics(self.metrics).inc("executor.retries")
                    if self.backoff > 0:
                        time.sleep(self.backoff * (2 ** attempt))
        if self.on_failure == "serial":
            self.degraded = True
            resolve_metrics(self.metrics).inc("executor.degraded")
            self.events.append(
                f"executor: degraded to serial after {attempts} failed "
                f"attempts ({type(last_exc).__name__})"
            )
            return self._map_inline(fn, items)
        raise WorkerPoolError(
            f"worker pool failed {attempts} time(s); last error: "
            f"{type(last_exc).__name__}: {last_exc}",
            attempts=attempts,
        ) from last_exc

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def resolve_executor(
    spec: ExecutorSpec = None,
    *,
    retries: int = DEFAULT_RETRIES,
    on_failure: str = "raise",
) -> PipelineExecutor:
    """Turn a user-facing spec into an executor.

    Accepts ``None`` / ``0`` / ``1`` (serial), an integer job count
    (process pool), the strings ``"serial"``, ``"process"`` or
    ``"process:N"``, or an existing executor (returned unchanged).
    Every spec that resolves to one worker — the int ``1``, the string
    ``"process:1"``, or ``"process"`` on a single-core host — yields a
    :class:`SerialExecutor`, never a 1-worker pool.  ``retries`` and
    ``on_failure`` configure any :class:`ProcessPoolBackend` this
    resolves (existing executor instances keep their own settings).
    """

    def pool(jobs: Optional[int]) -> PipelineExecutor:
        resolved = jobs if jobs is not None else (os.cpu_count() or 2)
        if resolved <= 1:
            return SerialExecutor()
        return ProcessPoolBackend(resolved, retries=retries, on_failure=on_failure)

    if spec is None:
        return SerialExecutor()
    if isinstance(spec, PipelineExecutor):
        return spec
    if isinstance(spec, bool):  # bool is an int; reject it explicitly
        raise TypeError("executor spec must be None, int, str or PipelineExecutor")
    if isinstance(spec, int):
        return pool(spec)
    if isinstance(spec, str):
        if spec == "serial":
            return SerialExecutor()
        if spec == "process":
            return pool(None)
        if spec.startswith("process:"):
            return pool(int(spec.split(":", 1)[1]))
        raise ValueError(f"unknown executor spec {spec!r}")
    raise TypeError("executor spec must be None, int, str or PipelineExecutor")


#: Per-process memo behind :func:`per_process`.  Never travels across a
#: fork boundary usefully: a forked worker that inherits entries simply
#: reuses them, a spawned worker starts empty and rebuilds on demand.
_PER_PROCESS: dict = {}
_PER_PROCESS_PID: Optional[int] = None


def per_process(key, builder: Callable[[], T]) -> T:
    """Build-once-per-process memo for worker-side shared resources.

    Mmap fan-out tasks use this to open the packed records container
    once per worker process instead of once per chunk: the payload
    carries only ``(path, lo, hi)`` and the first task in each worker
    pays the open, every later chunk reuses the mapping.  The memo is
    invalidated when the pid changes (a forked child re-opens rather
    than trusting inherited file handles).
    """
    global _PER_PROCESS_PID
    pid = os.getpid()
    if pid != _PER_PROCESS_PID:
        _PER_PROCESS.clear()
        _PER_PROCESS_PID = pid
    try:
        return _PER_PROCESS[key]
    except KeyError:
        value = builder()
        _PER_PROCESS[key] = value
        return value


def chunked(items: Iterable[T], size: int = DEFAULT_CHUNK_SIZE) -> List[List[T]]:
    """Split items into contiguous chunks of at most ``size``.

    Boundaries depend only on the item sequence and ``size`` — not on
    the executor — which is what keeps parallel merges bit-identical to
    serial runs.
    """
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    out: List[List[T]] = []
    chunk: List[T] = []
    for item in items:
        chunk.append(item)
        if len(chunk) == size:
            out.append(chunk)
            chunk = []
    if chunk:
        out.append(chunk)
    return out
