"""Per-stage pipeline accounting, as a thin view over the tracer.

Historical-attribution services serve this workload with precomputation
and caching; knowing *which* stage dominates is what makes that
precomputation targeted.  A :class:`PipelineStats` is threaded through
``build_datasets`` (and from there into the restoration and lifetime
builders); every stage records wall time and how many items it fanned
out over.  The CLI surfaces it via ``simulate --profile`` and the
scaling benchmark persists it to ``benchmarks/results/``.

Since the observability layer landed, :class:`PipelineStats` no longer
stores timings itself: every ``stage()`` block opens a span on an
underlying :class:`~repro.runtime.observability.Tracer` (kind
``"stage"``), ``note()`` doubles as a span annotation, and ``events``
*is* the tracer's event log.  The render/compare API is unchanged;
``stages`` is computed from the tracer's finished stage spans, so the
profile table and the exported JSON-lines trace can never disagree.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from .observability import MetricsRegistry, Span, Tracer, resolve_metrics

__all__ = ["StageTiming", "PipelineStats"]


def _human_bytes(n: int) -> str:
    """``4242`` → ``'4.1KiB'`` — compact payload sizes for the table."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{int(value)}B"  # pragma: no cover - unreachable


@dataclass
class StageTiming:
    """One stage's wall time and (optional) fan-out width/payload."""

    name: str
    seconds: float
    items: Optional[int] = None
    #: Total pickled payload bytes the stage's pool fan-outs shipped to
    #: workers (``None`` when the stage never crossed a process pool).
    bytes_shipped: Optional[int] = None

    def rate(self) -> Optional[float]:
        """Items per second, when both are known."""
        if self.items is None or self.seconds <= 0:
            return None
        return self.items / self.seconds


class PipelineStats:
    """Ordered per-stage timings of one pipeline run.

    Besides timings, a run accumulates :attr:`events` — the runtime's
    degradation log (cache quarantines, failed stores, worker-pool
    retries, serial fallback).  A clean run has an empty list; anything
    in it means the pipeline survived a fault and how.

    Parameters
    ----------
    tracer:
        The :class:`~repro.runtime.observability.Tracer` this object
        views; a fresh one is created when omitted.  ``stages`` and
        ``events`` are projections of its spans and event log.
    metrics:
        The :class:`~repro.runtime.observability.MetricsRegistry` the
        run aggregates into (default: the process-global registry).
    """

    def __init__(
        self,
        backend: str = "serial",
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.backend = backend
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = resolve_metrics(metrics)

    @property
    def stages(self) -> List[StageTiming]:
        """Finished stage spans, projected to the profile view."""
        return [
            StageTiming(
                name=span.name,
                seconds=span.seconds,
                items=span.items,
                bytes_shipped=span.attrs.get("bytes_shipped"),
            )
            for span in self.tracer.stage_spans()
        ]

    @property
    def events(self) -> List[str]:
        """The tracer's event log (the very list object, mutable)."""
        return self.tracer.events

    def note(self, message: str) -> None:
        """Record one runtime event (retry, quarantine, degradation)."""
        self.tracer.note(message)

    def drain_events_from(self, *sources: object) -> None:
        """Move the ``events`` logs of caches/executors into this run.

        The source log is snapshotted before extending and cleared
        afterwards, so a source reused across runs never re-reports old
        events — and draining a source that shares this run's event
        list (including this object itself) is a safe no-op instead of
        an unbounded self-extension.
        """
        own = self.events
        for source in sources:
            log = getattr(source, "events", None)
            if log is None or log is own:
                continue
            pending = [str(event) for event in log]
            if not pending:
                continue
            try:
                log.clear()
            except AttributeError:
                pass  # immutable source log: report it, cannot drain it
            for event in pending:
                self.note(event)

    @contextmanager
    def stage(
        self, name: str, items: Optional[int] = None, **attrs: object
    ) -> Iterator[Span]:
        """Time a stage; the yielded span can be given a late item count.

        Extra keyword attributes (component, engine, registry, ...)
        land on the stage's span and flow into the exported trace and
        the manifest's span digest.
        """
        span = self.tracer.start_span(name, kind="stage", items=items, **attrs)
        try:
            yield span
        finally:
            self.tracer.finish_span(span)
            self.metrics.observe(f"stage.{name}.seconds", span.seconds)

    def record(
        self, name: str, seconds: float, items: Optional[int] = None, **attrs: object
    ) -> Span:
        """Append an externally measured stage; returns its span so
        callers can attach late attributes (ledger summaries)."""
        span = self.tracer.record(name, seconds, kind="stage", items=items, **attrs)
        self.metrics.observe(f"stage.{name}.seconds", seconds)
        return span

    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def seconds_of(self, name: str) -> float:
        """Total wall time of every stage with this name."""
        return sum(s.seconds for s in self.stages if s.name == name)

    def as_dict(self) -> Dict[str, float]:
        """stage name → total seconds (stages repeating a name sum up)."""
        out: Dict[str, float] = {}
        for stage in self.stages:
            out[stage.name] = out.get(stage.name, 0.0) + stage.seconds
        return out

    def render(self) -> str:
        """Fixed-width table of stages, for terminals and result files."""
        stages = self.stages
        total = sum(stage.seconds for stage in stages)
        lines = [
            f"Pipeline profile ({self.backend} backend, {total:.3f}s total)",
            f"{'stage':<28} {'seconds':>9} {'share':>7} {'items':>8} {'shipped':>9}",
        ]
        for stage in stages:
            share = stage.seconds / total if total > 0 else 0.0
            items = "" if stage.items is None else str(stage.items)
            shipped = (
                "" if stage.bytes_shipped is None
                else _human_bytes(stage.bytes_shipped)
            )
            lines.append(
                f"{stage.name:<28} {stage.seconds:>9.3f} {share:>6.1%} "
                f"{items:>8} {shipped:>9}"
            )
        if self.events:
            lines.append(f"runtime events ({len(self.events)}):")
            lines.extend(f"  {event}" for event in self.events)
        return "\n".join(lines)

    def compare(
        self,
        baseline: "PipelineStats",
        *,
        label: str = "this",
        baseline_label: str = "baseline",
    ) -> str:
        """Side-by-side per-stage comparison against a baseline run.

        Stage names present in either run are listed (in first-seen
        order); the speedup column is baseline seconds over this run's
        seconds, so values above 1 mean this run is faster.  Used by
        the scaling benchmark to contrast the columnar BGP activity
        engine with the object-stream baseline.
        """
        mine = self.as_dict()
        theirs = baseline.as_dict()
        names = list(dict.fromkeys(
            [s.name for s in self.stages] + [s.name for s in baseline.stages]
        ))
        lines = [
            f"{'stage':<28} {label:>10} {baseline_label:>10} {'speedup':>8}",
        ]
        for name in names:
            a = mine.get(name)
            b = theirs.get(name)
            a_txt = "" if a is None else f"{a:.3f}s"
            b_txt = "" if b is None else f"{b:.3f}s"
            if a and b:
                speedup = f"{b / a:>7.1f}x"
            else:
                speedup = ""
            lines.append(f"{name:<28} {a_txt:>10} {b_txt:>10} {speedup:>8}")
        total_a = self.total_seconds()
        total_b = baseline.total_seconds()
        speedup = f"{total_b / total_a:>7.1f}x" if total_a > 0 and total_b > 0 else ""
        lines.append(
            f"{'total':<28} {total_a:>9.3f}s {total_b:>9.3f}s {speedup:>8}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PipelineStats backend={self.backend} "
            f"stages={len(self.stages)} events={len(self.events)}>"
        )
