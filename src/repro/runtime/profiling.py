"""Per-stage wall-time and item-count accounting for pipeline runs.

Historical-attribution services serve this workload with precomputation
and caching; knowing *which* stage dominates is what makes that
precomputation targeted.  A :class:`PipelineStats` is threaded through
``build_datasets`` (and from there into the restoration and lifetime
builders); every stage records wall time and how many items it fanned
out over.  The CLI surfaces it via ``simulate --profile`` and the
scaling benchmark persists it to ``benchmarks/results/``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["StageTiming", "PipelineStats"]


@dataclass
class StageTiming:
    """One stage's wall time and (optional) fan-out width."""

    name: str
    seconds: float
    items: Optional[int] = None

    def rate(self) -> Optional[float]:
        """Items per second, when both are known."""
        if self.items is None or self.seconds <= 0:
            return None
        return self.items / self.seconds


@dataclass
class PipelineStats:
    """Ordered per-stage timings of one pipeline run.

    Besides timings, a run accumulates :attr:`events` — the runtime's
    degradation log (cache quarantines, failed stores, worker-pool
    retries, serial fallback).  A clean run has an empty list; anything
    in it means the pipeline survived a fault and how.
    """

    backend: str = "serial"
    stages: List[StageTiming] = field(default_factory=list)
    events: List[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        """Record one runtime event (retry, quarantine, degradation)."""
        self.events.append(message)

    def drain_events_from(self, *sources: object) -> None:
        """Move the ``events`` logs of caches/executors into this run."""
        for source in sources:
            log = getattr(source, "events", None)
            if not log:
                continue
            self.events.extend(str(event) for event in log)
            log.clear()

    @contextmanager
    def stage(self, name: str, items: Optional[int] = None) -> Iterator[StageTiming]:
        """Time a stage; the yielded record can be given a late item count."""
        timing = StageTiming(name=name, seconds=0.0, items=items)
        start = time.perf_counter()
        try:
            yield timing
        finally:
            timing.seconds = time.perf_counter() - start
            self.stages.append(timing)

    def record(self, name: str, seconds: float, items: Optional[int] = None) -> None:
        """Append an externally measured stage."""
        self.stages.append(StageTiming(name=name, seconds=seconds, items=items))

    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def seconds_of(self, name: str) -> float:
        """Total wall time of every stage with this name."""
        return sum(s.seconds for s in self.stages if s.name == name)

    def as_dict(self) -> Dict[str, float]:
        """stage name → total seconds (stages repeating a name sum up)."""
        out: Dict[str, float] = {}
        for stage in self.stages:
            out[stage.name] = out.get(stage.name, 0.0) + stage.seconds
        return out

    def render(self) -> str:
        """Fixed-width table of stages, for terminals and result files."""
        total = self.total_seconds()
        lines = [
            f"Pipeline profile ({self.backend} backend, {total:.3f}s total)",
            f"{'stage':<28} {'seconds':>9} {'share':>7} {'items':>8}",
        ]
        for stage in self.stages:
            share = stage.seconds / total if total > 0 else 0.0
            items = "" if stage.items is None else str(stage.items)
            lines.append(
                f"{stage.name:<28} {stage.seconds:>9.3f} {share:>6.1%} {items:>8}"
            )
        if self.events:
            lines.append(f"runtime events ({len(self.events)}):")
            lines.extend(f"  {event}" for event in self.events)
        return "\n".join(lines)

    def compare(
        self,
        baseline: "PipelineStats",
        *,
        label: str = "this",
        baseline_label: str = "baseline",
    ) -> str:
        """Side-by-side per-stage comparison against a baseline run.

        Stage names present in either run are listed (in first-seen
        order); the speedup column is baseline seconds over this run's
        seconds, so values above 1 mean this run is faster.  Used by
        the scaling benchmark to contrast the columnar BGP activity
        engine with the object-stream baseline.
        """
        mine = self.as_dict()
        theirs = baseline.as_dict()
        names = list(dict.fromkeys(
            [s.name for s in self.stages] + [s.name for s in baseline.stages]
        ))
        lines = [
            f"{'stage':<28} {label:>10} {baseline_label:>10} {'speedup':>8}",
        ]
        for name in names:
            a = mine.get(name)
            b = theirs.get(name)
            a_txt = "" if a is None else f"{a:.3f}s"
            b_txt = "" if b is None else f"{b:.3f}s"
            if a and b:
                speedup = f"{b / a:>7.1f}x"
            else:
                speedup = ""
            lines.append(f"{name:<28} {a_txt:>10} {b_txt:>10} {speedup:>8}")
        total_a = self.total_seconds()
        total_b = baseline.total_seconds()
        speedup = f"{total_b / total_a:>7.1f}x" if total_a > 0 and total_b > 0 else ""
        lines.append(
            f"{'total':<28} {total_a:>9.3f}s {total_b:>9.3f}s {speedup:>8}"
        )
        return "\n".join(lines)
