"""Deterministic failure injection for the runtime layer.

The paper's §3.1 premise is that a 17-year pipeline must survive
defective *inputs* — missing, corrupt, and inconsistent delegation
files.  The runtime layer has inputs of its own: cache entries on
disk, worker processes, and the filesystem itself.  This module is the
§3.1 pitfall injector for those inputs: a seeded
:class:`FaultInjector` that the :class:`~repro.runtime.cache.
ArtifactCache` and :class:`~repro.runtime.executor.ProcessPoolBackend`
consult at their failure-prone points, so every failure mode the
hardening claims to survive can be provoked on demand, deterministically
(same seed + same call order → same faults), in tests and in CI.

Faults are described by :class:`FaultSpec` rows — *where* they strike
(a ``site``), *what* goes wrong (a ``kind``), how often (``rate``) and
how many times at most (``max_fires``):

========================  =====================================================
site                      failure-prone point
========================  =====================================================
``cache:read``            reading an entry's payload or manifest
``cache:write``           writing a temp payload/manifest file
``cache:replace``         the atomic ``os.replace`` publishing an entry
``worker``                dispatching a fan-out to the process pool
========================  =====================================================

========================  =====================================================
kind                      behaviour when fired
========================  =====================================================
``oserror``               ``OSError(EIO)`` — generic I/O failure
``read-only``             ``OSError(EROFS)`` — read-only filesystem
``disk-full``             writes a partial prefix, then ``OSError(ENOSPC)``
``torn-write``            silently persists only a seeded prefix of the bytes
``truncate``              silently persists zero bytes
``worker-death``          raises :class:`BrokenProcessPool` (a dead worker)
========================  =====================================================

Injected faults surface as the *real* exception types the runtime has
to survive (``OSError`` subtypes, ``BrokenProcessPool``) — never as a
special injection error — so the code under test cannot tell drills
from disasters.

A process-wide injector can also be enabled from the environment
(:func:`from_env`): ``REPRO_FAULT_SEED`` switches it on, with
``REPRO_FAULT_RATE`` (default 0.05) and ``REPRO_FAULT_SITES`` (csv,
default all sites) tuning it.  CI runs the whole tier-1 suite once
under this ambient injection at a fixed seed: every test must still
pass, because every injected failure must end in a correct rebuilt
artifact or a clean, typed error — never a silent wrong answer.
"""

from __future__ import annotations

import errno
import os
import random
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .observability import get_metrics

__all__ = [
    "SITES",
    "KINDS",
    "USE_ENV_FAULTS",
    "FaultSpec",
    "FaultEvent",
    "FaultInjector",
    "from_env",
    "resolve_faults",
    "ENV_SEED",
    "ENV_RATE",
    "ENV_SITES",
]

#: Sentinel default for ``faults`` parameters across the runtime:
#: consult :func:`from_env` (ambient suite-wide injection) unless the
#: caller explicitly passes an injector or ``None``.
USE_ENV_FAULTS = object()

SITES = ("cache:read", "cache:write", "cache:replace", "worker")

KINDS = (
    "oserror",
    "read-only",
    "disk-full",
    "torn-write",
    "truncate",
    "worker-death",
)

#: Which kinds make sense at which sites.
_SITE_KINDS = {
    "cache:read": ("oserror",),
    "cache:write": ("oserror", "read-only", "disk-full", "torn-write", "truncate"),
    "cache:replace": ("oserror", "read-only", "disk-full"),
    "worker": ("worker-death",),
}

ENV_SEED = "REPRO_FAULT_SEED"
ENV_RATE = "REPRO_FAULT_RATE"
ENV_SITES = "REPRO_FAULT_SITES"


@dataclass(frozen=True)
class FaultSpec:
    """One failure mode armed at one site.

    ``rate`` is the per-opportunity firing probability; ``max_fires``
    bounds total firings (``None`` = unbounded), which is how tests
    model *transient* failures — e.g. one worker death followed by a
    successful retry.
    """

    site: str
    kind: str
    rate: float = 1.0
    max_fires: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.site not in _SITE_KINDS:
            raise ValueError(f"unknown fault site {self.site!r}")
        if self.kind not in _SITE_KINDS[self.site]:
            raise ValueError(
                f"fault kind {self.kind!r} cannot strike site {self.site!r}"
            )
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError("fault rate must be within [0, 1]")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("max_fires must be None or >= 1")


@dataclass
class FaultEvent:
    """One fault that actually fired (the injector's ground-truth log)."""

    site: str
    kind: str
    detail: str = ""


class FaultInjector:
    """Seeded dispenser of runtime faults.

    The cache and the process-pool backend call the ``on_*`` hooks at
    their failure-prone points; a hook either does nothing or makes the
    armed failure happen.  All randomness comes from one
    ``random.Random(seed)``, so a given seed and call order reproduce
    the exact same fault sequence.
    """

    def __init__(self, specs: Iterable[FaultSpec], *, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._by_site: Dict[str, List[FaultSpec]] = {}
        for spec in specs:
            self._by_site.setdefault(spec.site, []).append(spec)
        self._fired: Dict[FaultSpec, int] = {}
        self.events: List[FaultEvent] = []
        #: Callables invoked with each :class:`FaultEvent` as it fires.
        #: :meth:`~repro.runtime.observability.Tracer.subscribe_faults`
        #: registers one to mirror faults into the emitted trace.
        self.listeners: List[Callable[[FaultEvent], None]] = []

    def fired(self, site: Optional[str] = None) -> int:
        """How many faults have fired (optionally at one site)."""
        if site is None:
            return len(self.events)
        return sum(1 for e in self.events if e.site == site)

    def _arm(self, site: str, exclude: Sequence[str] = ()) -> Optional[FaultSpec]:
        """The spec firing at this opportunity, if any."""
        for spec in self._by_site.get(site, ()):
            if spec.kind in exclude:
                continue
            used = self._fired.get(spec, 0)
            if spec.max_fires is not None and used >= spec.max_fires:
                continue
            if spec.rate < 1.0 and self._rng.random() >= spec.rate:
                continue
            self._fired[spec] = used + 1
            return spec
        return None

    def _log(self, spec: FaultSpec, detail: str) -> None:
        event = FaultEvent(site=spec.site, kind=spec.kind, detail=detail)
        self.events.append(event)
        metrics = get_metrics()
        metrics.inc("faults.injected")
        metrics.inc(f"faults.{spec.site}.{spec.kind}")
        for listener in list(self.listeners):
            listener(event)

    # -- hooks: the runtime calls these at its failure-prone points ----

    def on_read(self, path: Path) -> None:
        """May raise ``OSError`` for a payload/manifest read."""
        spec = self._arm("cache:read")
        if spec is None:
            return
        self._log(spec, str(path))
        raise OSError(errno.EIO, f"injected read failure: {path}")

    def on_write(self, path: Path, blob: bytes) -> None:
        """May raise for a temp-file write (possibly leaving wreckage).

        ``disk-full`` writes a partial prefix before raising — exactly
        the mess a real ``ENOSPC`` leaves behind — so temp-file cleanup
        is exercised against a file that genuinely exists.
        """
        # silent-corruption kinds are applied via mangle_write and must
        # not be armed (and consumed) here
        spec = self._arm("cache:write", exclude=("torn-write", "truncate"))
        if spec is None:
            return
        self._log(spec, str(path))
        if spec.kind == "read-only":
            raise OSError(errno.EROFS, f"injected read-only filesystem: {path}")
        if spec.kind == "disk-full":
            try:
                path.write_bytes(blob[: max(1, len(blob) // 3)])
            except OSError:
                pass
            raise OSError(errno.ENOSPC, f"injected disk full: {path}")
        raise OSError(errno.EIO, f"injected write failure: {path}")

    def mangle_write(self, blob: bytes) -> bytes:
        """The bytes that actually reach disk (torn/truncated writes).

        Models data pages lost after a crash: the write and the rename
        both *appear* to succeed, but the persisted payload is a prefix
        of what was written.  Only checksum verification (or an
        unpickling error) can catch this afterwards.
        """
        for spec in self._by_site.get("cache:write", ()):
            if spec.kind not in ("torn-write", "truncate"):
                continue
            used = self._fired.get(spec, 0)
            if spec.max_fires is not None and used >= spec.max_fires:
                continue
            if spec.rate < 1.0 and self._rng.random() >= spec.rate:
                continue
            self._fired[spec] = used + 1
            if spec.kind == "truncate":
                self._log(spec, f"{len(blob)} bytes -> 0")
                return b""
            cut = self._rng.randint(1, max(1, len(blob) - 1))
            self._log(spec, f"{len(blob)} bytes -> {cut}")
            return blob[:cut]
        return blob

    def on_replace(self, src: Path, dst: Path) -> None:
        """May raise ``OSError`` for the atomic publish rename."""
        spec = self._arm("cache:replace")
        if spec is None:
            return
        self._log(spec, f"{src} -> {dst}")
        if spec.kind == "read-only":
            raise OSError(errno.EROFS, f"injected read-only filesystem: {dst}")
        if spec.kind == "disk-full":
            raise OSError(errno.ENOSPC, f"injected disk full: {dst}")
        raise OSError(errno.EIO, f"injected replace failure: {dst}")

    def on_worker_dispatch(self) -> None:
        """May raise ``BrokenProcessPool`` for a pool fan-out."""
        spec = self._arm("worker")
        if spec is None:
            return
        self._log(spec, "pool dispatch")
        raise BrokenProcessPool(
            "injected worker death: a process in the process pool was "
            "terminated abruptly"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        armed = sum(len(v) for v in self._by_site.values())
        return (
            f"<FaultInjector seed={self.seed} specs={armed} "
            f"fired={len(self.events)}>"
        )


def _env_specs(rate: float, sites: Sequence[str]) -> List[FaultSpec]:
    """The ambient fault mix for suite-wide injection runs.

    Every fault here is one the runtime recovers from *transparently*
    (rebuild, retry, or degrade) — the point of the CI job is that the
    whole test suite is oblivious to them.  Worker deaths fire at a
    quarter of the base rate so that the bounded-retry budget (three
    attempts by default) keeps the chance of an exhausted pool
    negligible at the default 5% rate.
    """
    specs: List[FaultSpec] = []
    if "cache:read" in sites:
        specs.append(FaultSpec("cache:read", "oserror", rate, None))
    if "cache:write" in sites:
        specs.append(FaultSpec("cache:write", "torn-write", rate / 2, None))
        specs.append(FaultSpec("cache:write", "disk-full", rate / 2, None))
    if "cache:replace" in sites:
        specs.append(FaultSpec("cache:replace", "oserror", rate / 2, None))
    if "worker" in sites:
        specs.append(FaultSpec("worker", "worker-death", rate / 4, None))
    return specs


#: Cached (env fingerprint, injector) pair so every default-constructed
#: cache/executor in one process shares a single ambient injector (and
#: its RNG stream), keeping suite-wide injection runs deterministic.
_env_cache: Optional[Tuple[Tuple[Optional[str], Optional[str], Optional[str]], Optional[FaultInjector]]] = None


def from_env() -> Optional[FaultInjector]:
    """The process-wide ambient injector, or ``None`` when not enabled.

    Enabled by setting ``REPRO_FAULT_SEED``; ``REPRO_FAULT_RATE`` and
    ``REPRO_FAULT_SITES`` tune probability and coverage.  The injector
    is built once per environment fingerprint and shared.
    """
    global _env_cache
    fingerprint = (
        os.environ.get(ENV_SEED),
        os.environ.get(ENV_RATE),
        os.environ.get(ENV_SITES),
    )
    if _env_cache is not None and _env_cache[0] == fingerprint:
        return _env_cache[1]
    seed_text = fingerprint[0]
    injector: Optional[FaultInjector] = None
    if seed_text:
        rate = float(fingerprint[1]) if fingerprint[1] else 0.05
        sites = (
            tuple(s.strip() for s in fingerprint[2].split(",") if s.strip())
            if fingerprint[2]
            else SITES
        )
        injector = FaultInjector(_env_specs(rate, sites), seed=int(seed_text))
    _env_cache = (fingerprint, injector)
    return injector


def resolve_faults(faults: object) -> Optional[FaultInjector]:
    """Resolve a ``faults`` parameter: sentinel → env, else pass through."""
    if faults is USE_ENV_FAULTS:
        return from_env()
    return faults  # type: ignore[return-value]
