"""Append-only run registry: address past runs by manifest digest.

``repro inspect diff`` wants to compare "that run from before lunch"
with "this one" without the user remembering directory paths.  Each
``simulate`` invocation that writes a manifest appends one line to a
``runs.jsonl`` index — manifest digest, config hash, backend, and the
absolute artifact paths — so later commands can resolve a digest
prefix back to a loadable run.

The index is deliberately dumb: JSON lines, append-only, written with a
single ``O_APPEND`` write per run so concurrent appenders interleave at
line granularity (POSIX appends of this size are atomic on local
filesystems).  The reader tolerates a torn final line — a crashed
writer costs one entry, never the index.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

__all__ = [
    "RUNS_FORMAT",
    "record_run",
    "load_runs",
    "resolve_run",
    "run_path",
    "RunLookupError",
]

#: Format tag carried by every index line.
RUNS_FORMAT = "run-index/v1"


class RunLookupError(KeyError):
    """A digest prefix matched zero or several registered runs."""


def record_run(
    index_path: Union[str, Path],
    manifest: Mapping[str, Any],
    artifacts: Mapping[str, Union[str, Path, None]],
) -> Dict[str, Any]:
    """Append one run's identity + artifact locations to the index.

    ``artifacts`` maps kind (``manifest``/``metrics``/``trace``/
    ``ledger``/``admin``/``operational``) to the written path; ``None``
    values (artifact not requested) are skipped.  Paths are stored
    absolute so the index resolves from any working directory.
    """
    index_path = Path(index_path)
    index_path.parent.mkdir(parents=True, exist_ok=True)
    entry: Dict[str, Any] = {
        "format": RUNS_FORMAT,
        "digest": manifest.get("digest"),
        "config_hash": manifest.get("config_hash"),
        "backend": manifest.get("backend"),
        "git": manifest.get("git"),
        "artifacts": {
            kind: str(Path(path).resolve())
            for kind, path in sorted(artifacts.items())
            if path is not None
        },
    }
    line = json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
    fd = os.open(
        index_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
    )
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)
    return entry


def load_runs(index_path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every well-formed entry in the index, oldest first.

    Torn or foreign lines are skipped, not fatal: the index is an
    accelerator, and one crashed writer must not poison every later
    ``inspect diff``.
    """
    index_path = Path(index_path)
    if not index_path.exists():
        return []
    entries: List[Dict[str, Any]] = []
    with index_path.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and entry.get("format") == RUNS_FORMAT:
                entries.append(entry)
    return entries


def resolve_run(
    index_path: Union[str, Path],
    prefix: str,
) -> Dict[str, Any]:
    """The unique index entry whose digest starts with ``prefix``.

    Re-registrations of the same digest collapse to the newest entry
    (re-running an identical config is common and unambiguous).
    Raises :class:`RunLookupError` on zero or several distinct matches.
    """
    prefix = prefix.strip().lower()
    if not prefix:
        raise RunLookupError("empty digest prefix")
    by_digest: Dict[str, Dict[str, Any]] = {}
    for entry in load_runs(index_path):
        digest = str(entry.get("digest") or "")
        if digest.lower().startswith(prefix):
            by_digest[digest] = entry  # newest entry per digest wins
    if not by_digest:
        raise RunLookupError(
            f"no run with digest prefix {prefix!r} in {index_path}"
        )
    if len(by_digest) > 1:
        sample = ", ".join(sorted(d[:12] for d in by_digest))
        raise RunLookupError(
            f"digest prefix {prefix!r} is ambiguous in {index_path}: "
            f"matches {sample}"
        )
    return next(iter(by_digest.values()))


def run_path(entry: Mapping[str, Any]) -> Optional[Path]:
    """The run directory implied by an entry's artifact paths."""
    for kind in ("manifest", "trace", "metrics", "ledger"):
        path = entry.get("artifacts", {}).get(kind)
        if path:
            return Path(path).parent
    return None
