"""Pipeline runtime: execution backends, artifact caching, profiling.

The paper's real corpus (~930G RIB records, 107k ASNs over 6,350 days)
is processed once and then queried forever; this package gives the
reproduction pipeline the same operational shape.

* :mod:`repro.runtime.executor` — pluggable serial / process-pool
  backends with a determinism contract: parallel output is bit-identical
  to serial output.  Worker-pool failures are retried with backoff and
  can degrade to serial execution with identical results.
* :mod:`repro.runtime.cache` — content-addressed on-disk artifacts so
  an already-built world is loaded, not re-simulated; entries carry
  checksum manifests verified on load, and corrupt entries are
  quarantined, never trusted and never deleted blind.
* :mod:`repro.runtime.profiling` — per-stage wall time and fan-out
  width plus the runtime's degradation event log, surfaced through
  ``simulate --profile`` and the scaling benchmark.
* :mod:`repro.runtime.faults` — deterministic, seeded failure
  injection (torn writes, disk full, worker death, ...) so every
  failure mode the hardening claims to survive is provoked in tests
  and CI.
"""

from .cache import (
    ACTIVITY_TABLE_VERSION,
    MANIFEST_FORMAT,
    PIPELINE_VERSION,
    ArtifactCache,
    CacheError,
    CacheStoreError,
    cache_key,
    dumps_with_gc_paused,
    fingerprint,
    loads_with_gc_paused,
)
from .executor import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_RETRIES,
    PipelineExecutor,
    ProcessPoolBackend,
    SerialExecutor,
    WorkerPoolError,
    chunked,
    resolve_executor,
)
from .faults import (
    USE_ENV_FAULTS,
    FaultEvent,
    FaultInjector,
    FaultSpec,
)
from .observability import (
    RUN_MANIFEST_FORMAT,
    TRACE_FORMAT,
    MetricsRegistry,
    Span,
    Tracer,
    build_run_manifest,
    get_metrics,
    git_describe,
    reset_metrics,
    write_json_atomic,
    write_jsonl_atomic,
    write_run_manifest,
)
from .profiling import PipelineStats, StageTiming

__all__ = [
    "RUN_MANIFEST_FORMAT",
    "TRACE_FORMAT",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "build_run_manifest",
    "get_metrics",
    "git_describe",
    "reset_metrics",
    "write_json_atomic",
    "write_jsonl_atomic",
    "write_run_manifest",
    "PIPELINE_VERSION",
    "ACTIVITY_TABLE_VERSION",
    "MANIFEST_FORMAT",
    "ArtifactCache",
    "CacheError",
    "CacheStoreError",
    "cache_key",
    "dumps_with_gc_paused",
    "fingerprint",
    "loads_with_gc_paused",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_RETRIES",
    "PipelineExecutor",
    "ProcessPoolBackend",
    "SerialExecutor",
    "WorkerPoolError",
    "chunked",
    "resolve_executor",
    "USE_ENV_FAULTS",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "PipelineStats",
    "StageTiming",
]
