"""Pipeline runtime: execution backends, artifact caching, profiling.

The paper's real corpus (~930G RIB records, 107k ASNs over 6,350 days)
is processed once and then queried forever; this package gives the
reproduction pipeline the same operational shape.

* :mod:`repro.runtime.executor` — pluggable serial / process-pool
  backends with a determinism contract: parallel output is bit-identical
  to serial output.
* :mod:`repro.runtime.cache` — content-addressed on-disk artifacts so
  an already-built world is loaded, not re-simulated.
* :mod:`repro.runtime.profiling` — per-stage wall time and fan-out
  width, surfaced through ``simulate --profile`` and the scaling
  benchmark.
"""

from .cache import (
    ACTIVITY_TABLE_VERSION,
    PIPELINE_VERSION,
    ArtifactCache,
    cache_key,
    dumps_with_gc_paused,
    fingerprint,
    loads_with_gc_paused,
)
from .executor import (
    DEFAULT_CHUNK_SIZE,
    PipelineExecutor,
    ProcessPoolBackend,
    SerialExecutor,
    chunked,
    resolve_executor,
)
from .profiling import PipelineStats, StageTiming

__all__ = [
    "PIPELINE_VERSION",
    "ACTIVITY_TABLE_VERSION",
    "ArtifactCache",
    "cache_key",
    "dumps_with_gc_paused",
    "fingerprint",
    "loads_with_gc_paused",
    "DEFAULT_CHUNK_SIZE",
    "PipelineExecutor",
    "ProcessPoolBackend",
    "SerialExecutor",
    "chunked",
    "resolve_executor",
    "PipelineStats",
    "StageTiming",
]
