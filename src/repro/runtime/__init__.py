"""Pipeline runtime: execution backends, artifact caching, profiling.

The paper's real corpus (~930G RIB records, 107k ASNs over 6,350 days)
is processed once and then queried forever; this package gives the
reproduction pipeline the same operational shape.

* :mod:`repro.runtime.executor` — pluggable serial / process-pool
  backends with a determinism contract: parallel output is bit-identical
  to serial output.  Worker-pool failures are retried with backoff and
  can degrade to serial execution with identical results.
* :mod:`repro.runtime.cache` — content-addressed on-disk artifacts so
  an already-built world is loaded, not re-simulated; entries carry
  checksum manifests verified on load, and corrupt entries are
  quarantined, never trusted and never deleted blind.
* :mod:`repro.runtime.profiling` — per-stage wall time and fan-out
  width plus the runtime's degradation event log, surfaced through
  ``simulate --profile`` and the scaling benchmark.
* :mod:`repro.runtime.faults` — deterministic, seeded failure
  injection (torn writes, disk full, worker death, ...) so every
  failure mode the hardening claims to survive is provoked in tests
  and CI.
* :mod:`repro.runtime.ledger` — dataflow conservation accounting:
  every lossy boundary counts records in/kept/dropped-by-reason, a
  closure checker fails any stage where the books don't balance.
* :mod:`repro.runtime.inspect` — read-only consumers of the exported
  artifacts: span-tree rendering, flamegraph export, and cross-run
  diffing with cause attribution.
* :mod:`repro.runtime.runs` — append-only ``runs.jsonl`` registry so
  past runs are addressable by manifest-digest prefix.
"""

from .cache import (
    ACTIVITY_TABLE_VERSION,
    MANIFEST_FORMAT,
    PIPELINE_VERSION,
    ArtifactCache,
    CacheError,
    CacheStoreError,
    cache_key,
    dumps_with_gc_paused,
    fingerprint,
    loads_with_gc_paused,
)
from .executor import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_RETRIES,
    PipelineExecutor,
    ProcessPoolBackend,
    SerialExecutor,
    WorkerPoolError,
    chunked,
    resolve_executor,
)
from .faults import (
    USE_ENV_FAULTS,
    FaultEvent,
    FaultInjector,
    FaultSpec,
)
from .inspect import (
    RunArtifacts,
    TraceView,
    critical_path,
    diff_runs,
    folded_stacks,
    load_run,
    load_trace,
    render_diff,
    render_trace,
)
from .ledger import (
    LEDGER_FORMAT,
    LedgerBoundary,
    boundary,
    build_ledger,
    check_ledger,
    ledger_disabled,
    ledger_enabled,
    load_ledger,
    record_boundary,
    render_ledger,
    set_ledger_enabled,
    write_ledger,
)
from .observability import (
    RUN_MANIFEST_FORMAT,
    TRACE_FORMAT,
    MetricsRegistry,
    Span,
    Tracer,
    build_run_manifest,
    get_metrics,
    git_describe,
    reset_metrics,
    write_json_atomic,
    write_jsonl_atomic,
    write_run_manifest,
)
from .profiling import PipelineStats, StageTiming
from .runs import (
    RUNS_FORMAT,
    RunLookupError,
    load_runs,
    record_run,
    resolve_run,
    run_path,
)

__all__ = [
    "RUN_MANIFEST_FORMAT",
    "TRACE_FORMAT",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "build_run_manifest",
    "get_metrics",
    "git_describe",
    "reset_metrics",
    "write_json_atomic",
    "write_jsonl_atomic",
    "write_run_manifest",
    "PIPELINE_VERSION",
    "ACTIVITY_TABLE_VERSION",
    "MANIFEST_FORMAT",
    "ArtifactCache",
    "CacheError",
    "CacheStoreError",
    "cache_key",
    "dumps_with_gc_paused",
    "fingerprint",
    "loads_with_gc_paused",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_RETRIES",
    "PipelineExecutor",
    "ProcessPoolBackend",
    "SerialExecutor",
    "WorkerPoolError",
    "chunked",
    "resolve_executor",
    "USE_ENV_FAULTS",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "PipelineStats",
    "StageTiming",
    "LEDGER_FORMAT",
    "LedgerBoundary",
    "boundary",
    "build_ledger",
    "check_ledger",
    "ledger_disabled",
    "ledger_enabled",
    "load_ledger",
    "record_boundary",
    "render_ledger",
    "set_ledger_enabled",
    "write_ledger",
    "RunArtifacts",
    "TraceView",
    "critical_path",
    "diff_runs",
    "folded_stacks",
    "load_run",
    "load_trace",
    "render_diff",
    "render_trace",
    "RUNS_FORMAT",
    "RunLookupError",
    "load_runs",
    "record_run",
    "resolve_run",
    "run_path",
]
