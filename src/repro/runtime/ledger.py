"""Dataflow ledger: record-conservation accounting at lossy boundaries.

The paper's credibility rests on record-level accounting — §3.1's
restoration steps and §3.2's sanitization each discard or rewrite rows,
and Tables 1-3 only hold if every dropped record is attributable to a
reason.  This module gives every lossy pipeline boundary a conservation
counter set with one invariant per stage::

    in == kept + Σ dropped_by[reason] + Σ routed_by[class]

``kept`` is the pass-through bucket of a filter stage; ``dropped``
buckets carry the per-reason drop taxonomy (matching
:mod:`repro.bgp.sanitize` for BGP elements); ``routed`` buckets express
partition stages where every input lands in exactly one output class
(the §6 taxonomy: four classes, no pass-through).

Ledger rows are **not** stored in their own structure: every boundary
writes namespaced counters (``ledger.<stage>.in`` /
``ledger.<stage>.out.<bucket>``) into a
:class:`~repro.runtime.observability.MetricsRegistry` — by default the
process-global one.  That buys cross-process aggregation for free:
worker-side counts travel back with the task results and merge
additively via ``MetricsRegistry.merge_snapshot``, exactly like every
other metric, so serial and process-pool runs produce byte-identical
ledgers (the determinism contract extends to the accounting).

The closure checker (:func:`check_ledger`, also behind
``scripts/check_ledger.py`` and ``repro inspect ledger --check``) fails
on any non-conserving stage — a record that vanished without a reason,
or a reason counter that over-claims.  Because ``in``/``kept`` are
measured by *counting records* at the boundary while drop buckets come
from the stage's own semantic counters, closure is a genuine
cross-check, not a tautology.

Counters are cheap (one registry increment per bucket when emitted in
aggregate), but hot loops should accumulate locally and emit once; the
module-level switch (:func:`set_ledger_enabled`, or ``REPRO_LEDGER=off``
in the environment for worker processes) turns emission into a no-op so
the overhead benchmark can price the accounting.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from .observability import MetricsRegistry, resolve_metrics, write_json_atomic

__all__ = [
    "LEDGER_FORMAT",
    "KEPT_BUCKET",
    "DROPPED_PREFIX",
    "LedgerBoundary",
    "boundary",
    "record_boundary",
    "ledger_enabled",
    "set_ledger_enabled",
    "ledger_disabled",
    "rows_from_counters",
    "build_ledger",
    "write_ledger",
    "load_ledger",
    "check_ledger",
    "render_ledger",
]

#: Format tag of the ``ledger.json`` artifact.
LEDGER_FORMAT = "ledger/v1"

#: The pass-through bucket of a filter boundary.
KEPT_BUCKET = "kept"

#: Drop buckets are named ``dropped:<reason>`` in the counter namespace.
DROPPED_PREFIX = "dropped:"

_COUNTER_PREFIX = "ledger."
_IN_SUFFIX = ".in"
_OUT_MARK = ".out."

#: Environment kill-switch, read at import time so forked pool workers
#: inherit it (the in-process :func:`set_ledger_enabled` toggle is
#: process-local and does not reach already-spawned workers).
_ENV_SWITCH = "REPRO_LEDGER"

_ENABLED = os.environ.get(_ENV_SWITCH, "").strip().lower() not in (
    "0", "off", "false", "no",
)


def ledger_enabled() -> bool:
    """Whether boundaries currently emit counters in this process."""
    return _ENABLED


def set_ledger_enabled(enabled: bool) -> bool:
    """Switch ledger emission on/off (process-local); returns the old value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def ledger_disabled() -> Iterator[None]:
    """Temporarily suppress ledger emission (benchmarks, overhead tests)."""
    previous = set_ledger_enabled(False)
    try:
        yield
    finally:
        set_ledger_enabled(previous)


class LedgerBoundary:
    """Accumulator for one stage's conservation counters.

    Stage names must stay out of the counter separator character
    (``.``); the pipeline uses ``component:stage`` and
    ``restoration/<step>/<registry>`` shapes, both safe.
    """

    __slots__ = ("stage", "_metrics", "_prefix")

    def __init__(self, stage: str, metrics: MetricsRegistry) -> None:
        if "." in stage:
            raise ValueError(f"ledger stage name may not contain '.': {stage!r}")
        self.stage = stage
        self._metrics = metrics
        self._prefix = f"{_COUNTER_PREFIX}{stage}"

    def records_in(self, n: int = 1) -> None:
        """Count records entering the boundary."""
        if _ENABLED and n:
            self._metrics.inc(self._prefix + _IN_SUFFIX, n)

    def kept(self, n: int = 1) -> None:
        """Count records passing through unharmed."""
        if _ENABLED and n:
            self._metrics.inc(f"{self._prefix}{_OUT_MARK}{KEPT_BUCKET}", n)

    def dropped(self, reason: str, n: int = 1) -> None:
        """Count records discarded for one taxonomy reason."""
        if _ENABLED and n:
            self._metrics.inc(
                f"{self._prefix}{_OUT_MARK}{DROPPED_PREFIX}{reason}", n
            )

    def routed(self, bucket: str, n: int = 1) -> None:
        """Count records landing in one partition class."""
        if _ENABLED and n:
            self._metrics.inc(f"{self._prefix}{_OUT_MARK}{bucket}", n)


def boundary(stage: str, metrics: Optional[MetricsRegistry] = None) -> LedgerBoundary:
    """A :class:`LedgerBoundary` over ``metrics`` (default: process-global)."""
    return LedgerBoundary(stage, resolve_metrics(metrics))


def record_boundary(
    stage: str,
    *,
    records_in: int,
    kept: int = 0,
    dropped: Optional[Mapping[str, int]] = None,
    routed: Optional[Mapping[str, int]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Optional[Dict[str, Any]]:
    """Emit one boundary's aggregate counts in a single shot.

    Returns a compact summary dict suitable for span attributes (so the
    conservation numbers also land in the exported trace), or ``None``
    when the ledger is disabled.
    """
    if not _ENABLED:
        return None
    bound = boundary(stage, metrics)
    bound.records_in(records_in)
    bound.kept(kept)
    for reason, n in sorted((dropped or {}).items()):
        bound.dropped(reason, n)
    for bucket, n in sorted((routed or {}).items()):
        bound.routed(bucket, n)
    summary: Dict[str, Any] = {"in": int(records_in)}
    if kept:
        summary["kept"] = int(kept)
    if dropped:
        summary["dropped"] = {k: int(v) for k, v in sorted(dropped.items()) if v}
    if routed:
        summary["routed"] = {k: int(v) for k, v in sorted(routed.items()) if v}
    return summary


# -- document assembly ------------------------------------------------------


def rows_from_counters(counters: Mapping[str, int]) -> List[Dict[str, Any]]:
    """Parse ``ledger.*`` counters into per-stage conservation rows.

    Rows are sorted by stage name; each carries ``in``, ``kept``,
    per-reason ``dropped``, partition ``routed``, the derived ``out``
    total and a ``conserved`` verdict, so the document is self-checking.
    """
    stages: Dict[str, Dict[str, Any]] = {}

    def stage_row(stage: str) -> Dict[str, Any]:
        row = stages.get(stage)
        if row is None:
            row = stages[stage] = {
                "stage": stage, "in": 0, "kept": 0,
                "dropped": {}, "routed": {},
            }
        return row

    for name, value in counters.items():
        if not name.startswith(_COUNTER_PREFIX):
            continue
        rest = name[len(_COUNTER_PREFIX):]
        if rest.endswith(_IN_SUFFIX):
            stage_row(rest[: -len(_IN_SUFFIX)])["in"] += int(value)
            continue
        if _OUT_MARK in rest:
            stage, bucket = rest.split(_OUT_MARK, 1)
            row = stage_row(stage)
            if bucket == KEPT_BUCKET:
                row["kept"] += int(value)
            elif bucket.startswith(DROPPED_PREFIX):
                reason = bucket[len(DROPPED_PREFIX):]
                row["dropped"][reason] = row["dropped"].get(reason, 0) + int(value)
            else:
                row["routed"][bucket] = row["routed"].get(bucket, 0) + int(value)

    rows: List[Dict[str, Any]] = []
    for stage in sorted(stages):
        row = stages[stage]
        row["dropped"] = dict(sorted(row["dropped"].items()))
        row["routed"] = dict(sorted(row["routed"].items()))
        row["out"] = (
            row["kept"]
            + sum(row["dropped"].values())
            + sum(row["routed"].values())
        )
        row["conserved"] = row["in"] == row["out"]
        rows.append(row)
    return rows


def build_ledger(
    source: Union[MetricsRegistry, Mapping[str, Any], None] = None,
) -> Dict[str, Any]:
    """Assemble the ``ledger/v1`` document from a registry or snapshot.

    ``source`` may be a :class:`MetricsRegistry`, a ``snapshot()`` dict,
    or ``None`` for the process-global registry.
    """
    if source is None or isinstance(source, MetricsRegistry):
        snapshot = resolve_metrics(source).snapshot()
    else:
        snapshot = source
    rows = rows_from_counters(snapshot.get("counters", {}))
    return {
        "format": LEDGER_FORMAT,
        "stages": rows,
        "conserved": all(row["conserved"] for row in rows),
    }


def write_ledger(
    path: Union[str, Path],
    document: Optional[Mapping[str, Any]] = None,
    *,
    metrics: Optional[MetricsRegistry] = None,
) -> Path:
    """Atomically write a ledger document (built from ``metrics`` if absent)."""
    if document is None:
        document = build_ledger(metrics)
    return write_json_atomic(path, dict(document))


def load_ledger(path: Union[str, Path]) -> Dict[str, Any]:
    """Load ``ledger.json`` (accepts the file or its run directory)."""
    path = Path(path)
    if path.is_dir():
        path = path / "ledger.json"
    document = json.loads(path.read_text(encoding="utf-8"))
    if document.get("format") != LEDGER_FORMAT:
        raise ValueError(f"{path} is not a {LEDGER_FORMAT} document")
    return document


# -- closure checking and rendering -----------------------------------------


def check_ledger(document: Mapping[str, Any]) -> List[str]:
    """Conservation violations in a ledger document (empty == closed).

    Checks, per stage: non-negative counts, the recorded ``out`` total
    matching its buckets, and the invariant ``in == out``.  The
    top-level ``conserved`` flag must agree with the rows.
    """
    violations: List[str] = []
    if document.get("format") != LEDGER_FORMAT:
        violations.append(
            f"document format is {document.get('format')!r}, "
            f"expected {LEDGER_FORMAT!r}"
        )
        return violations
    rows_conserved = True
    for row in document.get("stages", []):
        stage = row.get("stage", "<unnamed>")
        records_in = int(row.get("in", 0))
        kept = int(row.get("kept", 0))
        dropped = {str(k): int(v) for k, v in row.get("dropped", {}).items()}
        routed = {str(k): int(v) for k, v in row.get("routed", {}).items()}
        for label, value in [("in", records_in), ("kept", kept),
                             *dropped.items(), *routed.items()]:
            if value < 0:
                violations.append(f"{stage}: negative count {label}={value}")
        out = kept + sum(dropped.values()) + sum(routed.values())
        if "out" in row and int(row["out"]) != out:
            violations.append(
                f"{stage}: recorded out={row['out']} but buckets sum to {out}"
            )
        if records_in != out:
            detail = f"kept={kept}"
            if dropped:
                detail += " dropped=" + ",".join(
                    f"{k}:{v}" for k, v in dropped.items()
                )
            if routed:
                detail += " routed=" + ",".join(
                    f"{k}:{v}" for k, v in routed.items()
                )
            violations.append(
                f"{stage}: in={records_in} != out={out} ({detail}); "
                f"{records_in - out:+d} records unaccounted"
            )
            rows_conserved = False
        if bool(row.get("conserved", records_in == out)) != (records_in == out):
            violations.append(f"{stage}: conserved flag contradicts the counts")
    if "conserved" in document and bool(document["conserved"]) != (
        rows_conserved and not violations
    ):
        if bool(document["conserved"]) and not rows_conserved:
            violations.append("document claims conserved=true but rows violate")
    return violations


def render_ledger(document: Mapping[str, Any]) -> str:
    """The conservation table, with per-reason drop percentages.

    These are the numbers behind the paper's Table 1-style accounting:
    every stage's input, what survived, and where every discarded
    record went (share of the stage input per reason/class).
    """
    rows = list(document.get("stages", []))
    lines = [
        f"Dataflow ledger ({document.get('format', LEDGER_FORMAT)}) — "
        f"{len(rows)} stages, "
        + ("all conserving" if document.get("conserved") else "VIOLATIONS"),
        f"{'stage':<44} {'in':>10} {'kept':>10} {'dropped':>9}  verdict",
    ]
    for row in rows:
        records_in = int(row.get("in", 0))
        kept = int(row.get("kept", 0))
        dropped = row.get("dropped", {})
        routed = row.get("routed", {})
        total_dropped = sum(int(v) for v in dropped.values())
        verdict = "ok" if row.get("conserved") else "VIOLATION"
        lines.append(
            f"{row.get('stage', ''):<44} {records_in:>10} {kept:>10} "
            f"{total_dropped:>9}  {verdict}"
        )

        def share(n: int) -> str:
            return f"{n / records_in:.2%}" if records_in else "n/a"

        for reason in sorted(dropped):
            n = int(dropped[reason])
            lines.append(f"  - dropped[{reason}]{'':<24} {n:>10}  ({share(n)})")
        for bucket in sorted(routed):
            n = int(routed[bucket])
            lines.append(f"  - class[{bucket}]{'':<26} {n:>10}  ({share(n)})")
    return "\n".join(lines)
