"""repro — reproduction of "The parallel lives of Autonomous Systems:
ASN Allocations vs. BGP" (IMC 2021).

The package reconstructs, over a simulated 17-year window, the
administrative lives of AS numbers (from RIR delegation files) and
their operational lives (from BGP collector data), then joins the two
"parallel lives" exactly as the paper does.

Subpackages
-----------
``timeline``     day ordinals and interval algebra
``asn``          AS-number types, bogons, IANA block ledger
``net``          IP prefixes
``rir``          delegation-file formats, RIR registry state machines
``bgp``          AS topology, route propagation, collectors, sanitization
``restoration``  the six-step delegation-archive restoration (§3.1)
``lifetimes``    administrative (§4.1) and operational (§4.2) lifetimes
``core``         the joint analysis: taxonomy, trends, anomaly detectors
``simulation``   the synthetic Internet that substitutes for RIR/BGP feeds
"""

__version__ = "1.0.0"

# Convenience re-exports: the handful of names that cover the common
# "simulate → analyze" workflow without deep imports.
from .core.joint import JointAnalysis
from .core.report import render_report
from .lifetimes.io import (
    dump_admin_dataset,
    dump_bgp_dataset,
    load_admin_dataset,
    load_bgp_dataset,
)
from .simulation.config import WorldConfig
from .simulation.datasets import DatasetBundle, build_datasets

__all__ = [
    "__version__",
    "WorldConfig",
    "build_datasets",
    "DatasetBundle",
    "JointAnalysis",
    "render_report",
    "dump_admin_dataset",
    "dump_bgp_dataset",
    "load_admin_dataset",
    "load_bgp_dataset",
]
