"""Declarative scenario composition (seed-emulator style).

A :class:`Scenario` is a named stack of independent declarative layers
— RIR policy mix, topology recipe, growth & transfer schedule, anomaly
calendar, operational event calendar — that compiles down to the
existing :class:`~repro.simulation.config.WorldConfig` and runs under
the unchanged pipeline, cache, ledger, and perf-gate machinery.

See ``DESIGN.md`` §11 for the layer model and compile contract, and
``examples/scenarios/`` for the named scenario files.
"""

from .io import (
    SCENARIO_FORMAT,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from .layers import (
    LAYER_TYPES,
    AnomalyCalendar,
    EventCalendar,
    GrowthSchedule,
    Layer,
    LayerConflictError,
    RirPolicyMix,
    ScenarioError,
    TopologyRecipe,
)
from .library import (
    NAMED_SCENARIOS,
    get_scenario,
    resolve_scenario,
    scenario_names,
)
from .scenario import Scenario, scenario_fingerprint

__all__ = [
    "SCENARIO_FORMAT",
    "LAYER_TYPES",
    "NAMED_SCENARIOS",
    "AnomalyCalendar",
    "EventCalendar",
    "GrowthSchedule",
    "Layer",
    "LayerConflictError",
    "RirPolicyMix",
    "Scenario",
    "ScenarioError",
    "TopologyRecipe",
    "get_scenario",
    "load_scenario",
    "resolve_scenario",
    "save_scenario",
    "scenario_fingerprint",
    "scenario_from_dict",
    "scenario_names",
    "scenario_to_dict",
]
