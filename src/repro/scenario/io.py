"""Scenario files: the ``scenario/v1`` JSON document format.

A scenario file is declarative data, no code:

.. code-block:: json

    {
      "format": "scenario/v1",
      "name": "flat-ixp-heavy",
      "description": "exchange-dominated flat Internet",
      "seed": 0,
      "layers": [
        {"layer": "topology-recipe", "recipe": "ixp-heavy", "ixp_count": 6},
        {"layer": "growth-schedule", "scale": 0.01}
      ]
    }

Loading is strict in both directions: an unknown ``layer`` tag, an
unknown field inside a layer, or an unknown top-level key raises
:class:`~repro.scenario.layers.ScenarioError` naming the offender —
the file-format counterpart of ``WorldConfig.from_dict``'s unknown-key
rejection.  ``scenario_to_dict`` → ``scenario_from_dict`` round-trips
losslessly (tuples survive the JSON list detour).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

from .layers import LAYER_TYPES, Layer, ScenarioError
from .scenario import Scenario

__all__ = [
    "SCENARIO_FORMAT",
    "scenario_to_dict",
    "scenario_from_dict",
    "load_scenario",
    "save_scenario",
]

SCENARIO_FORMAT = "scenario/v1"

#: Layer fields whose values are (lo, hi) tuples in Python but lists
#: on the wire.
_TUPLE_FIELDS = frozenset({"hoarder_asns", "nir_block_size"})


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """Reduce a scenario to its ``scenario/v1`` document."""
    layers = []
    for layer in scenario.layers:
        doc: Dict[str, Any] = {"layer": layer.layer_name}
        for name, value in sorted(layer.set_fields().items()):
            if isinstance(value, tuple):
                value = list(value)
            doc[name] = value
        layers.append(doc)
    return {
        "format": SCENARIO_FORMAT,
        "name": scenario.name,
        "description": scenario.description,
        "seed": scenario.seed,
        "layers": layers,
    }


def _layer_from_dict(doc: Mapping[str, Any], *, index: int) -> Layer:
    if not isinstance(doc, Mapping):
        raise ScenarioError(f"layer #{index} is not an object: {doc!r}")
    kind = doc.get("layer")
    layer_cls = LAYER_TYPES.get(kind)
    if layer_cls is None:
        known = ", ".join(sorted(LAYER_TYPES))
        raise ScenarioError(
            f"layer #{index}: unknown layer type {kind!r} "
            f"(expected one of {known})"
        )
    known_fields = {f.name for f in dataclasses.fields(layer_cls)}
    kwargs: Dict[str, Any] = {}
    for key, value in doc.items():
        if key == "layer":
            continue
        if key not in known_fields:
            raise ScenarioError(
                f"layer #{index} ({kind}): unknown field {key!r}"
            )
        if key in _TUPLE_FIELDS and isinstance(value, list):
            value = tuple(value)
        kwargs[key] = value
    return layer_cls(**kwargs)


def scenario_from_dict(doc: Mapping[str, Any]) -> Scenario:
    """Parse a ``scenario/v1`` document (strict)."""
    if not isinstance(doc, Mapping):
        raise ScenarioError(f"scenario document is not an object: {doc!r}")
    fmt = doc.get("format")
    if fmt != SCENARIO_FORMAT:
        raise ScenarioError(
            f"unsupported scenario format {fmt!r} "
            f"(expected {SCENARIO_FORMAT!r})"
        )
    allowed = {"format", "name", "description", "seed", "layers"}
    unknown = sorted(set(doc) - allowed)
    if unknown:
        names = ", ".join(repr(k) for k in unknown)
        raise ScenarioError(f"unknown scenario key(s): {names}")
    layers_doc = doc.get("layers", [])
    if not isinstance(layers_doc, (list, tuple)):
        raise ScenarioError("scenario 'layers' must be a list")
    layers = tuple(
        _layer_from_dict(layer_doc, index=index)
        for index, layer_doc in enumerate(layers_doc)
    )
    return Scenario(
        name=doc.get("name", ""),
        description=doc.get("description", ""),
        seed=int(doc.get("seed", 0)),
        layers=layers,
    )


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Read and parse one scenario file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario file {path}: {exc}")
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise ScenarioError(f"scenario file {path} is not valid JSON: {exc}")
    return scenario_from_dict(doc)


def save_scenario(scenario: Scenario, path: Union[str, Path]) -> Path:
    """Write one scenario file (canonical: sorted keys inside layers
    come from :func:`scenario_to_dict`; 2-space indent; trailing
    newline)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(scenario_to_dict(scenario), indent=2) + "\n",
        encoding="utf-8",
    )
    return path
