"""The :class:`Scenario` object and its compile contract.

A scenario is a named, seeded, *ordered-but-order-insensitive* stack
of declarative layers.  :meth:`Scenario.compile` folds every layer's
``WorldConfig`` overrides together — rejecting cross-layer conflicts —
and builds the config through the strict
:meth:`~repro.simulation.config.WorldConfig.from_dict` path, so a
compiled scenario runs under the existing pipeline (``simulate()``,
executors, cache, ledger, perf gate) unchanged.

Identity: :func:`scenario_fingerprint` reduces a scenario to the same
canonical structure the artifact cache uses for configs, and
:meth:`Scenario.digest` hashes it.  The CLI folds the digest into the
run manifest and the dataset-bundle cache key, so two runs of the same
named scenario share cache entries and two different scenarios never
collide — even when they happen to compile to the same config.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..runtime.cache import cache_key, fingerprint
from ..simulation.config import UnknownConfigKeyError, WorldConfig
from .layers import Layer, LayerConflictError, ScenarioError

__all__ = ["Scenario", "scenario_fingerprint"]


@dataclass(frozen=True)
class Scenario:
    """A declarative world recipe: name + seed + layer stack."""

    name: str
    description: str = ""
    seed: int = 0
    layers: Tuple[Layer, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ScenarioError("a scenario needs a non-empty name")
        for layer in self.layers:
            if not isinstance(layer, Layer):
                raise ScenarioError(
                    f"scenario {self.name!r}: {layer!r} is not a Layer"
                )

    def validate(self) -> None:
        """Validate every layer (raises :class:`ScenarioError`)."""
        for layer in self.layers:
            layer.validate()

    def merged_overrides(self) -> Dict[str, Any]:
        """Fold layer overrides, rejecting cross-layer conflicts.

        Commutative by construction: each config field may be set by
        any number of layers as long as they all agree, so the merge
        result — and therefore the compiled config — cannot depend on
        layer order.
        """
        merged: Dict[str, Any] = {}
        owner: Dict[str, str] = {}
        for layer in self.layers:
            for field, value in layer.overrides().items():
                if field in merged and merged[field] != value:
                    raise LayerConflictError(
                        f"scenario {self.name!r}: layers "
                        f"{owner[field]!r} and {layer.layer_name!r} both "
                        f"set {field!r} with different values "
                        f"({merged[field]!r} vs {value!r})"
                    )
                merged.setdefault(field, value)
                owner.setdefault(field, layer.layer_name)
        return merged

    def compile(self) -> WorldConfig:
        """Validate, merge, and build the :class:`WorldConfig`."""
        self.validate()
        merged = self.merged_overrides()
        try:
            config = WorldConfig.from_dict({"seed": self.seed, **merged})
        except UnknownConfigKeyError as exc:
            # layers can only emit known fields, so this means a layer
            # mapping bug — surface it as a scenario error regardless
            raise ScenarioError(
                f"scenario {self.name!r} compiled unknown config keys: {exc}"
            ) from exc
        except ValueError as exc:
            raise ScenarioError(
                f"scenario {self.name!r} compiles to an invalid config: {exc}"
            ) from exc
        return config

    def digest(self) -> str:
        """Content hash of the scenario definition (cache-key grade)."""
        return cache_key(scenario=self)


def scenario_fingerprint(scenario: Scenario) -> Any:
    """Canonical JSON-compatible identity structure of a scenario.

    The same reduction the artifact cache applies to configs
    (dataclasses → tagged dicts, tuples → lists), so the fingerprint
    embeds directly into run manifests and cache keys.
    """
    return fingerprint(scenario)
