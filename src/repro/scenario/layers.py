"""Declarative scenario layers.

A scenario (:mod:`repro.scenario.scenario`) is composed of independent
layers in the seed-emulator style: each layer owns one aspect of the
simulated world — the RIR policy mix, the topology recipe, the growth
and transfer schedule, the anomaly calendar, the operational event
calendar — and contributes a set of :class:`~repro.simulation.config.
WorldConfig` field overrides when the scenario compiles.

Every layer is a frozen dataclass whose fields all default to ``None``
(= "leave the simulator default alone").  A layer only ever *sets*
fields, so composition is commutative: the compiled config cannot
depend on layer order.  Two layers that set the same underlying config
field to different values are a :class:`LayerConflictError` — the one
way composition can fail.

Layer field names are scenario-file vocabulary and deliberately
decoupled from ``WorldConfig`` field names (``recipe`` →
``topology_recipe``, ``dormant_squats`` → ``dormant_squat_events``,
``start`` → ``start_day`` with ISO-date parsing); each class carries
the mapping in ``_FIELD_MAP`` / ``_TRANSFORMS``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Dict, Mapping, Optional, Tuple, Type

from ..rir.model import RIR_NAMES
from ..simulation.config import TOPOLOGY_RECIPES
from ..timeline.dates import from_iso

__all__ = [
    "ScenarioError",
    "LayerConflictError",
    "Layer",
    "RirPolicyMix",
    "TopologyRecipe",
    "GrowthSchedule",
    "AnomalyCalendar",
    "EventCalendar",
    "LAYER_TYPES",
]


class ScenarioError(ValueError):
    """Invalid scenario: bad layer values, unknown names, bad files."""


class LayerConflictError(ScenarioError):
    """Two layers set the same ``WorldConfig`` field to different values."""


def _identity(value: Any) -> Any:
    return value


@dataclass(frozen=True)
class Layer:
    """Base class: override bookkeeping shared by every layer.

    Subclasses declare ``_FIELD_MAP`` (layer field → ``WorldConfig``
    field; identity when omitted) and ``_TRANSFORMS`` (layer field →
    value converter applied at compile time).
    """

    #: Scenario-file type tag; subclasses override.
    layer_name: ClassVar[str] = "layer"
    _FIELD_MAP: ClassVar[Mapping[str, str]] = {}
    _TRANSFORMS: ClassVar[Mapping[str, Callable[[Any], Any]]] = {}

    def validate(self) -> None:
        """Raise :class:`ScenarioError` on out-of-range values.

        Range checks that :class:`WorldConfig` would also reject are
        repeated here with layer-level messages, so a bad scenario file
        fails naming the layer, not the compiled artifact.
        """

    def set_fields(self) -> Dict[str, Any]:
        """The explicitly-set (non-``None``) layer fields, by layer name."""
        out: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value is not None:
                out[f.name] = value
        return out

    def overrides(self) -> Dict[str, Any]:
        """Contribute ``WorldConfig`` field overrides (compile step)."""
        out: Dict[str, Any] = {}
        for name, value in self.set_fields().items():
            transform = self._TRANSFORMS.get(name, _identity)
            try:
                converted = transform(value)
            except (TypeError, ValueError) as exc:
                raise ScenarioError(
                    f"{self.layer_name}: bad value for {name!r}: {exc}"
                ) from None
            out[self._FIELD_MAP.get(name, name)] = converted
        return out

    # -- shared validation helpers -------------------------------------

    def _require_fraction(self, *names: str) -> None:
        for name in names:
            value = getattr(self, name)
            if value is not None and not 0.0 <= value <= 1.0:
                raise ScenarioError(
                    f"{self.layer_name}: {name} must be in [0, 1], "
                    f"got {value!r}"
                )

    def _require_non_negative(self, *names: str) -> None:
        for name in names:
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ScenarioError(
                    f"{self.layer_name}: {name} must be >= 0, got {value!r}"
                )

    def _require_pair(self, *names: str) -> None:
        for name in names:
            value = getattr(self, name)
            if value is None:
                continue
            if (
                len(value) != 2
                or any(not isinstance(v, int) for v in value)
                or value[0] > value[1]
                or value[0] < 0
            ):
                raise ScenarioError(
                    f"{self.layer_name}: {name} must be a (lo, hi) pair "
                    f"of non-negative ints with lo <= hi, got {value!r}"
                )


@dataclass(frozen=True)
class RirPolicyMix(Layer):
    """Registry-side behavior: who allocates how much, to whom.

    ``birth_rate_multiplier`` scales the paper-shaped per-registry
    birth curves (the regional-growth lever); the remaining knobs move
    the administrative-behavior rates of §5/§6.3.
    """

    layer_name = "rir-policy-mix"

    historical_allocations: Optional[int] = None
    birth_rate_multiplier: Optional[Dict[str, float]] = None
    sibling_probability: Optional[float] = None
    hoarder_orgs: Optional[int] = None
    hoarder_asns: Optional[Tuple[int, int]] = None
    nir_blocks_per_year: Optional[float] = None
    nir_block_size: Optional[Tuple[int, int]] = None
    failed_32bit_rate: Optional[float] = None
    regdate_correction_rate: Optional[float] = None

    def validate(self) -> None:
        self._require_non_negative(
            "historical_allocations", "hoarder_orgs", "nir_blocks_per_year"
        )
        self._require_fraction(
            "sibling_probability", "failed_32bit_rate", "regdate_correction_rate"
        )
        self._require_pair("hoarder_asns", "nir_block_size")
        if self.birth_rate_multiplier is not None:
            for registry, rate in self.birth_rate_multiplier.items():
                if registry not in RIR_NAMES:
                    raise ScenarioError(
                        f"{self.layer_name}: unknown registry {registry!r} "
                        f"in birth_rate_multiplier"
                    )
                if rate < 0:
                    raise ScenarioError(
                        f"{self.layer_name}: birth_rate_multiplier for "
                        f"{registry!r} must be >= 0, got {rate!r}"
                    )


@dataclass(frozen=True)
class TopologyRecipe(Layer):
    """How the AS graph and the collector infrastructure are wired."""

    layer_name = "topology-recipe"
    _FIELD_MAP = {"recipe": "topology_recipe"}

    recipe: Optional[str] = None
    tier1_count: Optional[int] = None
    transit_share: Optional[float] = None
    peering_prob: Optional[float] = None
    stub_extra_provider_prob: Optional[float] = None
    ixp_count: Optional[int] = None
    regional_clusters: Optional[int] = None
    routeviews_collectors: Optional[int] = None
    ris_collectors: Optional[int] = None
    peers_per_collector: Optional[int] = None

    def validate(self) -> None:
        if self.recipe is not None and self.recipe not in TOPOLOGY_RECIPES:
            raise ScenarioError(
                f"{self.layer_name}: unknown recipe {self.recipe!r} "
                f"(expected one of {', '.join(TOPOLOGY_RECIPES)})"
            )
        self._require_fraction(
            "transit_share", "peering_prob", "stub_extra_provider_prob"
        )
        for name in (
            "tier1_count", "ixp_count", "regional_clusters",
            "peers_per_collector",
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ScenarioError(
                    f"{self.layer_name}: {name} must be >= 1, got {value!r}"
                )
        self._require_non_negative("routeviews_collectors", "ris_collectors")


@dataclass(frozen=True)
class GrowthSchedule(Layer):
    """The observation window, the scale, and the transfer volumes."""

    layer_name = "growth-schedule"
    _FIELD_MAP = {"start": "start_day", "end": "end_day"}
    _TRANSFORMS = {"start": from_iso, "end": from_iso}

    #: ISO dates (``YYYY-MM-DD``) — parsed at compile time.
    start: Optional[str] = None
    end: Optional[str] = None
    scale: Optional[float] = None
    erx_transfers: Optional[int] = None
    inter_rir_transfers: Optional[int] = None

    def validate(self) -> None:
        for name in ("start", "end"):
            value = getattr(self, name)
            if value is not None:
                try:
                    from_iso(value)
                except (TypeError, ValueError):
                    raise ScenarioError(
                        f"{self.layer_name}: {name} must be an ISO date "
                        f"(YYYY-MM-DD), got {value!r}"
                    ) from None
        if (
            self.start is not None
            and self.end is not None
            and from_iso(self.end) <= from_iso(self.start)
        ):
            raise ScenarioError(
                f"{self.layer_name}: end ({self.end}) must follow "
                f"start ({self.start})"
            )
        if self.scale is not None and not 0.0 < self.scale <= 1.0:
            raise ScenarioError(
                f"{self.layer_name}: scale must be in (0, 1], "
                f"got {self.scale!r}"
            )
        self._require_non_negative("erx_transfers", "inter_rir_transfers")


@dataclass(frozen=True)
class AnomalyCalendar(Layer):
    """§6 anomaly event volumes (absolute counts at scale 1.0)."""

    layer_name = "anomaly-calendar"
    _FIELD_MAP = {
        "dormant_squats": "dormant_squat_events",
        "post_dealloc_squats": "post_dealloc_squat_events",
        "fat_finger_prepends": "fat_finger_prepend_events",
        "fat_finger_digits": "fat_finger_digit_events",
        "internal_leaks": "internal_leak_events",
        "noise_origins": "noise_origin_events",
    }

    dormant_squats: Optional[int] = None
    post_dealloc_squats: Optional[int] = None
    fat_finger_prepends: Optional[int] = None
    fat_finger_digits: Optional[int] = None
    internal_leaks: Optional[int] = None
    noise_origins: Optional[int] = None

    def validate(self) -> None:
        self._require_non_negative(*(f.name for f in dataclasses.fields(self)))


@dataclass(frozen=True)
class EventCalendar(Layer):
    """Operational-behavior event rates (§6.1/§6.2 lifecycle shape)."""

    layer_name = "event-calendar"

    unused_probability: Optional[float] = None
    unused_country_multiplier: Optional[Dict[str, float]] = None
    hoarder_used_probability: Optional[float] = None
    median_start_delay: Optional[int] = None
    gap_rate_per_800_days: Optional[float] = None
    short_gap_share: Optional[float] = None
    dangling_rate: Optional[float] = None
    early_start_rate: Optional[float] = None
    ghost_burst_rate: Optional[float] = None
    spurious_rate: Optional[float] = None
    sporadic_rate: Optional[float] = None

    def validate(self) -> None:
        self._require_fraction(
            "unused_probability", "hoarder_used_probability",
            "short_gap_share", "dangling_rate", "early_start_rate",
            "ghost_burst_rate", "spurious_rate", "sporadic_rate",
        )
        self._require_non_negative(
            "median_start_delay", "gap_rate_per_800_days"
        )
        if self.unused_country_multiplier is not None:
            for cc, rate in self.unused_country_multiplier.items():
                if rate < 0:
                    raise ScenarioError(
                        f"{self.layer_name}: unused_country_multiplier for "
                        f"{cc!r} must be >= 0, got {rate!r}"
                    )


#: Scenario-file type tag → layer class (the ``scenario/v1`` registry).
LAYER_TYPES: Dict[str, Type[Layer]] = {
    cls.layer_name: cls
    for cls in (
        RirPolicyMix, TopologyRecipe, GrowthSchedule,
        AnomalyCalendar, EventCalendar,
    )
}
