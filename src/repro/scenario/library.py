"""The named scenario library.

Five worlds the ROADMAP calls for, each a few declarative lines, all
runnable under the unchanged pipeline.  The JSON twins of these
definitions live under ``examples/scenarios/`` (kept in sync by a
test), and the CI scenario-matrix job runs every one of them against a
committed golden taxonomy output.

Scales are sized for CI: a full end-to-end run of any scenario stays
in the tens of seconds, yet large enough that the taxonomy classes all
populate.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from .layers import (
    AnomalyCalendar,
    EventCalendar,
    GrowthSchedule,
    RirPolicyMix,
    ScenarioError,
    TopologyRecipe,
)
from .scenario import Scenario

__all__ = [
    "NAMED_SCENARIOS",
    "scenario_names",
    "get_scenario",
    "resolve_scenario",
]


def _regional_internet() -> Scenario:
    """Growth concentrated in the young regions, island topology."""
    return Scenario(
        name="regional-internet",
        description=(
            "A regionalized Internet: allocation growth shifts to "
            "APNIC/LACNIC/AfriNIC while the topology splits into four "
            "loosely-peered regional islands — long inter-region paths, "
            "thin cross-region visibility."
        ),
        seed=11,
        layers=(
            GrowthSchedule(scale=0.01),
            TopologyRecipe(recipe="regional", tier1_count=3,
                           regional_clusters=4, peering_prob=0.06),
            RirPolicyMix(birth_rate_multiplier={
                "apnic": 2.2, "lacnic": 1.9, "afrinic": 1.7,
                "arin": 0.5, "ripencc": 0.7,
            }),
        ),
    )


def _flat_ixp_heavy() -> Scenario:
    """Exchange-fabric connectivity instead of provider chains."""
    return Scenario(
        name="flat-ixp-heavy",
        description=(
            "A flat, exchange-dominated Internet: a thin transit core, "
            "six IXPs, and dense lateral peering — the seed-emulator "
            "default world, stress for the visibility rule."
        ),
        seed=12,
        layers=(
            GrowthSchedule(scale=0.01),
            TopologyRecipe(recipe="ixp-heavy", ixp_count=6, tier1_count=4,
                           transit_share=0.08, peering_prob=0.2),
        ),
    )


def _thirty_two_bit_era() -> Scenario:
    """The post-2009 window where 32-bit ASNs are the default."""
    return Scenario(
        name="32-bit-era",
        description=(
            "2009-2015 only: 32-bit numbers are the default everywhere, "
            "failed 32-bit deployments (return + 16-bit retry, §6.3) "
            "three times the baseline rate."
        ),
        seed=13,
        layers=(
            GrowthSchedule(start="2009-01-01", end="2015-06-30", scale=0.012),
            RirPolicyMix(historical_allocations=12_000,
                         failed_32bit_rate=0.075),
            EventCalendar(median_start_delay=45),
        ),
    )


def _mass_transfer() -> Scenario:
    """A transfer-market world: ASNs change registries constantly."""
    return Scenario(
        name="mass-transfer",
        description=(
            "Transfer-market stress: triple the ERX volume and a 12x "
            "ordinary inter-RIR transfer rate — the §3.1 step-v "
            "restoration and the inter-RIR duplicate resolution carry "
            "the load."
        ),
        seed=14,
        layers=(
            GrowthSchedule(scale=0.01, erx_transfers=15_000,
                           inter_rir_transfers=4_000),
            RirPolicyMix(sibling_probability=0.25),
        ),
    )


def _hijack_storm() -> Scenario:
    """Anomaly volumes an order of magnitude above the paper's."""
    return Scenario(
        name="hijack-storm",
        description=(
            "An anomaly storm: 10x squatting/fat-finger/leak volumes "
            "plus elevated dangling and ghost-burst rates — the §6 "
            "detectors and the outside-delegation taxonomy class under "
            "fire."
        ),
        seed=15,
        layers=(
            GrowthSchedule(scale=0.01),
            AnomalyCalendar(dormant_squats=600, post_dealloc_squats=120,
                            fat_finger_prepends=900, fat_finger_digits=350,
                            internal_leaks=150, noise_origins=3_000),
            EventCalendar(dangling_rate=0.15, ghost_burst_rate=0.05),
        ),
    )


#: Name → scenario, in presentation order.
NAMED_SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        _regional_internet(),
        _flat_ixp_heavy(),
        _thirty_two_bit_era(),
        _mass_transfer(),
        _hijack_storm(),
    )
}


def scenario_names() -> List[str]:
    """The named scenarios, in presentation order."""
    return list(NAMED_SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look a named scenario up (typed error on unknowns)."""
    try:
        return NAMED_SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise ScenarioError(
            f"unknown scenario {name!r} (named scenarios: {known})"
        ) from None


def resolve_scenario(ref: Union[str, Path]) -> Scenario:
    """A name from the library, or a path to a ``scenario/v1`` file."""
    from .io import load_scenario

    ref_str = str(ref)
    if ref_str in NAMED_SCENARIOS:
        return NAMED_SCENARIOS[ref_str]
    path = Path(ref)
    if path.exists():
        return load_scenario(path)
    known = ", ".join(scenario_names())
    raise ScenarioError(
        f"{ref_str!r} is neither a named scenario nor a scenario file "
        f"(named scenarios: {known})"
    )
