"""In-memory query index over a published serve store.

:class:`StoreIndex` opens a ``serve-store/v1`` directory, loads the
shard table plus every shard document (verified, with bounded retries
on injected read faults), and answers the three query shapes the HTTP
layer exposes:

* **point** — ``lives(asn)`` / ``taxonomy(asn)``: binary search over
  the shard bounds, then over the shard's sorted ``asns`` array —
  O(log n) end to end;
* **as-of** — ``as_of(asn, day)``: the point lookup plus binary
  searches over the record's sorted lifetime rows and flat activity
  interval arrays;
* **range** — ``range_summary(lo, hi)`` / ``range_as_of``: two binary
  searches bound the shard span, then the covered records stream out,
  O(log n + k) for k hits.

Everything returned is a JSON-ready dict carrying the snapshot digest,
so clients can detect a store swap between queries.
"""

from __future__ import annotations

import json
from bisect import bisect_left, bisect_right
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..asn.numbers import ASN
from ..runtime.cache import USE_ENV_FAULTS
from ..timeline.dates import Day, to_iso
from .store import (
    INDEX_NAME,
    SERVE_STORE_FORMAT,
    AsnRecord,
    ServeStoreError,
    StoreMeta,
    decode_shard,
    load_bytes_verified,
    store_publisher,
)

__all__ = ["StoreIndex", "DEFAULT_RANGE_LIMIT"]

#: Upper bound on range-query result sizes (the HTTP layer caps the
#: client-requested ``limit`` here).
DEFAULT_RANGE_LIMIT = 1000


def _admin_json(record: AsnRecord, index: int) -> Dict[str, Any]:
    life = record.admin[index]
    doc = life.to_json_dict()
    doc["open_ended"] = life.open_ended
    doc["category"] = record.admin_cats[index].value
    if life.via_nir:
        doc["via_nir"] = True
    if life.left_censored:
        doc["left_censored"] = True
    return doc


def _op_json(record: AsnRecord, index: int) -> Dict[str, Any]:
    life = record.op[index]
    doc = life.to_json_dict()
    doc["open_ended"] = life.open_ended
    doc["category"] = record.op_cats[index].value
    return doc


class StoreIndex:
    """A read-only, fully loaded view of one store snapshot."""

    def __init__(
        self,
        index_doc: Dict[str, Any],
        shards: List[Tuple[List[ASN], List[AsnRecord]]],
    ) -> None:
        if index_doc.get("format") != SERVE_STORE_FORMAT:
            raise ServeStoreError(f"not a {SERVE_STORE_FORMAT} index document")
        self.doc = index_doc
        self.digest: str = index_doc["digest"]
        self.meta = StoreMeta.from_json_dict(index_doc["meta"])
        self._shards = shards
        #: Shard upper bounds, for the first-level binary search.
        self._his: List[ASN] = [asns[-1] for asns, _records in shards]

    # -- construction --------------------------------------------------

    @classmethod
    def open(
        cls,
        store_dir: Union[str, Path],
        *,
        faults: Any = USE_ENV_FAULTS,
        retries: int = 8,
    ) -> "StoreIndex":
        """Load a store directory (index + every shard, verified)."""
        cache = store_publisher(store_dir, faults=faults)
        index_blob = load_bytes_verified(cache, INDEX_NAME, retries=retries)
        try:
            index_doc = json.loads(index_blob.decode("utf-8"))
        except ValueError as exc:
            raise ServeStoreError(f"store index is not valid JSON: {exc}") from exc
        shards: List[Tuple[List[ASN], List[AsnRecord]]] = []
        for row in index_doc.get("shards", ()):
            blob = load_bytes_verified(cache, row["name"], retries=retries)
            records = decode_shard(blob)
            asns = [record.asn for record in records]
            if not asns or asns[0] != row["lo"] or asns[-1] != row["hi"]:
                raise ServeStoreError(
                    f"shard {row['name']} does not match its index row"
                )
            shards.append((asns, records))
        return cls(index_doc, shards)

    # -- lookups -------------------------------------------------------

    def all_asns(self) -> List[ASN]:
        """The store's full sorted ASN universe (load-gen planning)."""
        return [asn for asns, _records in self._shards for asn in asns]

    def record(self, asn: ASN) -> Optional[AsnRecord]:
        """The ASN's record via two binary searches, or ``None``."""
        shard_pos = bisect_left(self._his, asn)
        if shard_pos >= len(self._shards):
            return None
        asns, records = self._shards[shard_pos]
        pos = bisect_left(asns, asn)
        if pos < len(asns) and asns[pos] == asn:
            return records[pos]
        return None

    def _records_in_range(
        self, lo: ASN, hi: ASN
    ) -> Iterator[AsnRecord]:
        """Records with ``lo <= asn <= hi``, ascending."""
        shard_pos = bisect_left(self._his, lo)
        while shard_pos < len(self._shards):
            asns, records = self._shards[shard_pos]
            if asns[0] > hi:
                return
            start = bisect_left(asns, lo)
            stop = bisect_right(asns, hi)
            yield from records[start:stop]
            shard_pos += 1

    # -- query API (JSON-ready) ----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Identity and shape of the served snapshot."""
        meta = self.meta
        return {
            "snapshot": self.digest,
            "config_hash": self.doc.get("config_hash"),
            "window": {"start": to_iso(meta.start), "end": to_iso(meta.end)},
            "timeout": meta.timeout,
            "min_peers": meta.min_peers,
            "counts": self.doc.get("counts", {}),
            "shards": len(self._shards),
        }

    def lives(self, asn: ASN) -> Optional[Dict[str, Any]]:
        """Both lifetime datasets of one ASN (the Listing-1 records)."""
        record = self.record(asn)
        if record is None:
            return None
        return {
            "asn": asn,
            "snapshot": self.digest,
            "admin": [_admin_json(record, i) for i in range(len(record.admin))],
            "op": [_op_json(record, i) for i in range(len(record.op))],
        }

    def taxonomy(self, asn: ASN) -> Optional[Dict[str, Any]]:
        """The §5 category of every lifetime of one ASN, plus counts."""
        record = self.record(asn)
        if record is None:
            return None
        counts: Dict[str, int] = {}
        for category in record.admin_cats + record.op_cats:
            counts[category.value] = counts.get(category.value, 0) + 1
        return {
            "asn": asn,
            "snapshot": self.digest,
            "admin": [category.value for category in record.admin_cats],
            "op": [category.value for category in record.op_cats],
            "counts": counts,
        }

    def as_of(self, asn: ASN, day: Day) -> Optional[Dict[str, Any]]:
        """The ASN's state on one day: covering lives + raw visibility."""
        record = self.record(asn)
        if record is None:
            return None
        admin = next(
            (
                _admin_json(record, i)
                for i, life in enumerate(record.admin)
                if life.start <= day <= life.end
            ),
            None,
        )
        op = next(
            (
                _op_json(record, i)
                for i, life in enumerate(record.op)
                if life.start <= day <= life.end
            ),
            None,
        )
        observed = day in record.observed  # O(log n) interval bisect
        single = day in record.single
        return {
            "asn": asn,
            "snapshot": self.digest,
            "date": to_iso(day),
            "allocated": admin is not None,
            "admin": admin,
            "op": op,
            "observed": observed,
            "single_peer": single,
        }

    def range_summary(
        self, lo: ASN, hi: ASN, *, limit: int = DEFAULT_RANGE_LIMIT
    ) -> Dict[str, Any]:
        """Per-ASN lifetime/category counts over an ASN range."""
        limit = max(1, min(limit, DEFAULT_RANGE_LIMIT))
        rows: List[Dict[str, Any]] = []
        truncated = False
        total = 0
        for record in self._records_in_range(lo, hi):
            total += 1
            if len(rows) >= limit:
                truncated = True
                continue
            rows.append({
                "asn": record.asn,
                "admin_lives": len(record.admin),
                "op_lives": len(record.op),
                "categories": sorted(
                    {c.value for c in record.admin_cats + record.op_cats}
                ),
            })
        return {
            "snapshot": self.digest,
            "lo": lo,
            "hi": hi,
            "count": total,
            "truncated": truncated,
            "asns": rows,
        }

    def range_as_of(
        self, lo: ASN, hi: ASN, day: Day, *, limit: int = DEFAULT_RANGE_LIMIT
    ) -> Dict[str, Any]:
        """Which ASNs in a range were allocated/active on one day."""
        limit = max(1, min(limit, DEFAULT_RANGE_LIMIT))
        rows: List[Dict[str, Any]] = []
        truncated = False
        allocated = active = 0
        for record in self._records_in_range(lo, hi):
            is_alloc = any(
                life.start <= day <= life.end for life in record.admin
            )
            is_active = any(life.start <= day <= life.end for life in record.op)
            if not is_alloc and not is_active:
                continue
            allocated += is_alloc
            active += is_active
            if len(rows) >= limit:
                truncated = True
                continue
            rows.append({
                "asn": record.asn,
                "allocated": is_alloc,
                "active": is_active,
            })
        return {
            "snapshot": self.digest,
            "lo": lo,
            "hi": hi,
            "date": to_iso(day),
            "allocated": allocated,
            "active": active,
            "truncated": truncated,
            "asns": rows,
        }

    def category_counts(self) -> Dict[str, Dict[str, int]]:
        """Aggregate Table-3 counts over the whole store (debug aid)."""
        admin: Dict[str, int] = {}
        op: Dict[str, int] = {}
        for _asns, records in self._shards:
            for record in records:
                for category in record.admin_cats:
                    admin[category.value] = admin.get(category.value, 0) + 1
                for category in record.op_cats:
                    op[category.value] = op.get(category.value, 0) + 1
        return {"admin": admin, "op": op}

    def __len__(self) -> int:
        return sum(len(asns) for asns, _records in self._shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StoreIndex {self.digest[:12]} asns={len(self)} "
            f"shards={len(self._shards)}>"
        )
