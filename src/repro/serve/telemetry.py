"""Live service telemetry for the serve layer.

The batch pipeline's observability (DESIGN §7) answers "what did this
run do"; a long-lived server needs the streaming version: what is it
doing *right now*, and how has the last minute looked?  This module
supplies that, stdlib-only, on top of the registry-level histogram
buckets (:mod:`repro.runtime.observability`):

* **Labeled metric names** — the flat :class:`MetricsRegistry`
  namespace grows a canonical label encoding
  (``serve.http.requests|route=/asn/{n}/lives|status=200``) so
  per-route/per-status series ride the existing additive snapshot
  merge.  Labels always use *route templates*, never raw paths, so
  series cardinality is bounded by the route table, not the universe
  of ASNs clients probe.
* **Prometheus text exposition** — :func:`render_exposition` turns a
  registry snapshot into the ``text/plain; version=0.0.4`` format
  (counters as ``_total``, bucketed histograms as cumulative
  ``_bucket{le=...}`` series); :func:`parse_exposition` is the strict
  inverse the load generator and CI use to cross-check the server's
  account of a load run against the client's.
* :class:`AccessLog` — structured JSONL access logs with deterministic
  1-in-N sampling (request sequence number, not a coin flip), size-
  based rotation to a single ``.1`` backup, and atomic line appends
  (one ``os.write`` per line on an ``O_APPEND`` descriptor — two
  processes tailing the log never see a torn line).
* :class:`SloWindow` — a sliding window of bucketed sub-windows (ring
  of per-slice histogram counts) yielding a rolling p99 and error
  rate over the last ``window_seconds``, cheap enough to update on
  every request (one bucket increment) and evaluated lazily when
  ``/status`` or ``/healthz`` asks.
* :class:`ServerTelemetry` — the facade :class:`LifetimesServer`
  drives: per-request recording, drop accounting, the ``/status``
  document, and the ``/metrics`` exposition body.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..runtime.observability import (
    HISTOGRAM_BUCKET_BOUNDS,
    OVERFLOW_BUCKET,
    MetricsRegistry,
    quantile_from_buckets,
    resolve_metrics,
)

__all__ = [
    "labeled",
    "split_labeled",
    "render_exposition",
    "parse_exposition",
    "le_label",
    "AccessLog",
    "SloWindow",
    "ServerTelemetry",
    "ACCESS_LOG_FORMAT",
    "DEFAULT_LOG_SAMPLE",
    "DEFAULT_LOG_MAX_BYTES",
    "DEFAULT_SLO_WINDOW_SECONDS",
    "DEFAULT_SLO_SLICES",
    "request_quantiles",
]

#: Format tag carried by every access-log line.
ACCESS_LOG_FORMAT = "serve-access/v1"

#: Default access-log sampling: every request (1-in-1).
DEFAULT_LOG_SAMPLE = 1

#: Default size threshold before the access log rotates to ``.1``.
DEFAULT_LOG_MAX_BYTES = 64 * 1024 * 1024

DEFAULT_SLO_WINDOW_SECONDS = 60.0
DEFAULT_SLO_SLICES = 12


# -- labeled metric names ---------------------------------------------------

_LABEL_SEP = "|"


def labeled(name: str, **labels: Any) -> str:
    """Canonical labeled metric name: ``name|k1=v1|k2=v2`` (sorted keys).

    The separator never appears in route templates or status codes, so
    the encoding is unambiguous; sorted keys make the name canonical,
    so the same series from two workers merges into one entry.
    """
    return name + "".join(
        f"{_LABEL_SEP}{key}={labels[key]}" for key in sorted(labels)
    )


def split_labeled(name: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`labeled`: ``(base name, labels dict)``."""
    base, *parts = name.split(_LABEL_SEP)
    labels: Dict[str, str] = {}
    for part in parts:
        key, _sep, value = part.partition("=")
        labels[key] = value
    return base, labels


# -- Prometheus text exposition ---------------------------------------------

_PROM_PREFIX = "repro_"

#: Canonical ``le`` label per bucket bound — formatted once so the
#: exposition and its parser agree bit-for-bit on bucket identity.
_LE_LABELS: List[str] = [f"{bound:.6g}" for bound in HISTOGRAM_BUCKET_BOUNDS]
_LE_INDEX: Dict[str, int] = {text: i for i, text in enumerate(_LE_LABELS)}


def le_label(index: int) -> str:
    """The ``le`` label of bucket ``index`` (``+Inf`` for overflow)."""
    return "+Inf" if index >= OVERFLOW_BUCKET else _LE_LABELS[index]


def _prom_name(base: str) -> str:
    return _PROM_PREFIX + base.replace(".", "_").replace("-", "_")


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(labels[key])}"' for key in sorted(labels)
    )
    return "{" + inner + "}"


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # bools are ints; never emit True/False
        value = int(value)
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_exposition(snapshot: Mapping[str, Any]) -> str:
    """A registry snapshot as Prometheus text exposition (v0.0.4).

    Counters become ``<name>_total``, gauges stay plain, histograms
    expand to cumulative ``_bucket{le=...}`` series over the shared
    log-scaled bounds plus ``_sum``/``_count``.  Labeled registry
    names (:func:`labeled`) become real Prometheus labels.  Families
    are emitted sorted, with one ``# TYPE`` line each.
    """
    families: Dict[str, Dict[str, Any]] = {}

    def family(base: str, kind: str) -> Dict[str, Any]:
        name = _prom_name(base)
        entry = families.setdefault(name, {"kind": kind, "samples": []})
        return entry

    for name, value in snapshot.get("counters", {}).items():
        base, labels_map = split_labeled(name)
        family(base, "counter")["samples"].append(
            (_prom_name(base) + "_total" + _label_text(labels_map), value)
        )
    for name, value in snapshot.get("gauges", {}).items():
        base, labels_map = split_labeled(name)
        family(base, "gauge")["samples"].append(
            (_prom_name(base) + _label_text(labels_map), value)
        )
    for name, summary in snapshot.get("histograms", {}).items():
        base, labels_map = split_labeled(name)
        entry = family(base, "histogram")
        prom = _prom_name(base)
        dense = [0] * (OVERFLOW_BUCKET + 1)
        for key, n in (summary.get("buckets") or {}).items():
            dense[int(key)] += int(n)
        cum = 0
        for i, n in enumerate(dense[:OVERFLOW_BUCKET]):
            cum += n
            bucket_labels = dict(labels_map)
            bucket_labels["le"] = le_label(i)
            entry["samples"].append(
                (prom + "_bucket" + _label_text(bucket_labels), cum)
            )
        inf_labels = dict(labels_map)
        inf_labels["le"] = "+Inf"
        entry["samples"].append(
            (prom + "_bucket" + _label_text(inf_labels),
             int(summary.get("count", 0)))
        )
        entry["samples"].append(
            (prom + "_sum" + _label_text(labels_map),
             float(summary.get("sum", 0.0)))
        )
        entry["samples"].append(
            (prom + "_count" + _label_text(labels_map),
             int(summary.get("count", 0)))
        )

    lines: List[str] = []
    for name in sorted(families):
        entry = families[name]
        lines.append(f"# TYPE {name} {entry['kind']}")
        for sample, value in entry["samples"]:
            lines.append(f"{sample} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def parse_exposition(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse exposition text back into ``{(name, labels): value}``.

    Labels are a sorted tuple of ``(key, value)`` pairs.  Raises
    :class:`ValueError` on any malformed non-comment line, so callers
    (the load generator's consistency check, CI) validate the format
    as a side effect of reading it.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        head, _sep, value_text = line.rpartition(" ")
        if not head:
            raise ValueError(f"exposition line {lineno}: no value: {raw!r}")
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"exposition line {lineno}: bad value {value_text!r}"
            ) from None
        labels: List[Tuple[str, str]] = []
        name = head
        if head.endswith("}"):
            brace = head.index("{")
            name = head[:brace]
            inner = head[brace + 1:-1]
            while inner:
                eq = inner.index("=")
                key = inner[:eq]
                if len(inner) <= eq + 1 or inner[eq + 1] != '"':
                    raise ValueError(
                        f"exposition line {lineno}: unquoted label: {raw!r}"
                    )
                pos = eq + 2
                chunks: List[str] = []
                while pos < len(inner) and inner[pos] != '"':
                    if inner[pos] == "\\" and pos + 1 < len(inner):
                        escaped = inner[pos + 1]
                        chunks.append(
                            {"n": "\n"}.get(escaped, escaped)
                        )
                        pos += 2
                    else:
                        chunks.append(inner[pos])
                        pos += 1
                if pos >= len(inner):
                    raise ValueError(
                        f"exposition line {lineno}: unterminated label: {raw!r}"
                    )
                labels.append((key, "".join(chunks)))
                inner = inner[pos + 1:].lstrip(",")
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(
                f"exposition line {lineno}: bad metric name {name!r}"
            )
        samples[(name, tuple(sorted(labels)))] = value
    return samples


# -- structured access log --------------------------------------------------


class AccessLog:
    """JSONL access log: deterministic sampling, rotation, atomic lines.

    * **Sampling** is 1-in-``sample`` by request sequence number
      (``seq % sample == 0``) — deterministic, so two identical load
      runs produce identical logs and the analyzer can scale counts
      back up by exactly ``sample``.
    * **Rotation** is size-based: when the next line would push the
      file past ``max_bytes``, the current file is atomically renamed
      to ``<name>.1`` (replacing any previous backup) and a fresh file
      starts.  At most two files ever exist.
    * **Atomicity**: each line is one ``os.write`` on an ``O_APPEND``
      descriptor — concurrent readers never observe a torn line.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        sample: int = DEFAULT_LOG_SAMPLE,
        max_bytes: int = DEFAULT_LOG_MAX_BYTES,
    ) -> None:
        self.path = Path(path)
        self.sample = max(1, int(sample))
        self.max_bytes = max(1, int(max_bytes))
        self._fd: Optional[int] = None
        self._size = 0
        self._seq = 0
        self.written = 0

    def _open(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            self._size = os.fstat(self._fd).st_size
        return self._fd

    def _rotate(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        backup = self.path.with_name(self.path.name + ".1")
        try:
            os.replace(self.path, backup)
        except FileNotFoundError:  # pragma: no cover - racy external unlink
            pass
        self._size = 0

    def log(self, record: Mapping[str, Any]) -> bool:
        """Maybe write one record; returns True when the line was written."""
        seq = self._seq
        self._seq += 1
        if seq % self.sample:
            return False
        doc = dict(record)
        doc["seq"] = seq
        doc["sample"] = self.sample
        line = (
            json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        fd = self._open()
        if self._size and self._size + len(line) > self.max_bytes:
            self._rotate()
            fd = self._open()
        os.write(fd, line)
        self._size += len(line)
        self.written += 1
        return True

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


# -- sliding-window SLO tracker ---------------------------------------------


class SloWindow:
    """Rolling p99 / error-rate over a ring of bucketed sub-windows.

    The window is cut into ``slices`` equal sub-windows; each holds a
    dense bucket-count array plus request/error totals.  ``observe``
    is O(1): map now → slice slot, reset the slot if it belongs to an
    expired cycle, bump one bucket.  ``summary`` folds the live slots
    together and derives the rolling quantiles — the expensive part
    runs only when someone asks (``/status``, ``/healthz``).

    Error semantics: the SLO error rate counts **server** failures
    (status >= 500).  Client errors (4xx) are the service working as
    specified and are visible per route in ``/status`` instead.
    """

    def __init__(
        self,
        *,
        window_seconds: float = DEFAULT_SLO_WINDOW_SECONDS,
        slices: int = DEFAULT_SLO_SLICES,
        clock=time.monotonic,
    ) -> None:
        if window_seconds <= 0 or slices < 1:
            raise ValueError("SLO window needs window_seconds > 0, slices >= 1")
        self.window_seconds = float(window_seconds)
        self.slices = int(slices)
        self.slice_seconds = self.window_seconds / self.slices
        self._clock = clock
        self._slots: List[Dict[str, Any]] = [
            self._fresh_slot(-1) for _ in range(self.slices)
        ]

    @staticmethod
    def _fresh_slot(slot: int) -> Dict[str, Any]:
        return {
            "slot": slot,
            "buckets": [0] * (OVERFLOW_BUCKET + 1),
            "requests": 0,
            "errors": 0,
            "sum": 0.0,
        }

    def _slot_for(self, now: float) -> Dict[str, Any]:
        slot = int(now / self.slice_seconds)
        entry = self._slots[slot % self.slices]
        if entry["slot"] != slot:
            entry = self._fresh_slot(slot)
            self._slots[slot % self.slices] = entry
        return entry

    def observe(
        self,
        latency_us: float,
        *,
        error: bool = False,
        now: Optional[float] = None,
    ) -> None:
        from ..runtime.observability import bucket_index

        now = self._clock() if now is None else now
        entry = self._slot_for(now)
        entry["buckets"][bucket_index(latency_us)] += 1
        entry["requests"] += 1
        entry["sum"] += float(latency_us)
        if error:
            entry["errors"] += 1

    def summary(self, now: Optional[float] = None) -> Dict[str, Any]:
        """The rolling window folded down to its health signals."""
        now = self._clock() if now is None else now
        current = int(now / self.slice_seconds)
        live_floor = current - self.slices + 1
        buckets = [0] * (OVERFLOW_BUCKET + 1)
        requests = errors = 0
        total = 0.0
        for entry in self._slots:
            if entry["slot"] < live_floor or entry["slot"] < 0:
                continue
            for i, n in enumerate(entry["buckets"]):
                buckets[i] += n
            requests += entry["requests"]
            errors += entry["errors"]
            total += entry["sum"]
        doc: Dict[str, Any] = {
            "window_seconds": self.window_seconds,
            "requests": requests,
            "errors": errors,
            "error_rate": (errors / requests) if requests else 0.0,
        }
        if requests:
            doc["p50_us"] = round(quantile_from_buckets(buckets, 0.50), 1)
            doc["p99_us"] = round(quantile_from_buckets(buckets, 0.99), 1)
            doc["mean_us"] = round(total / requests, 1)
        else:
            doc["p50_us"] = doc["p99_us"] = doc["mean_us"] = 0.0
        return doc


# -- server-side aggregate quantiles ----------------------------------------


def request_quantiles(
    snapshot: Mapping[str, Any],
    *,
    base: str = "serve.http.request_us",
    quantiles: Mapping[str, float] = None,
) -> Dict[str, float]:
    """Aggregate per-route request histograms → server-side quantiles.

    Folds every ``<base>|route=...`` histogram in a registry snapshot
    into one bucket array and derives the named quantiles (default
    p50/p90/p99), clamped to the merged min/max.  Returns ``{}`` when
    the snapshot has no matching observations.
    """
    if quantiles is None:
        quantiles = {"p50_us": 0.50, "p90_us": 0.90, "p99_us": 0.99}
    buckets = [0] * (OVERFLOW_BUCKET + 1)
    count = 0
    minimum = float("inf")
    maximum = float("-inf")
    for name, summary in snapshot.get("histograms", {}).items():
        if split_labeled(name)[0] != base:
            continue
        n = int(summary.get("count", 0))
        if n == 0:
            continue
        count += n
        minimum = min(minimum, float(summary.get("min", 0.0)))
        maximum = max(maximum, float(summary.get("max", 0.0)))
        for key, v in (summary.get("buckets") or {}).items():
            buckets[int(key)] += int(v)
    if count == 0:
        return {}
    return {
        label: quantile_from_buckets(
            buckets, q, count=count, minimum=minimum, maximum=maximum
        )
        for label, q in quantiles.items()
    }


# -- the server-facing facade -----------------------------------------------


class ServerTelemetry:
    """Everything :class:`LifetimesServer` records and reports.

    One instance per server.  Metrics go into the (shared) registry
    under labeled names; the SLO ring and access log are per-instance.
    Two latency series exist on purpose: ``serve.http.latency_us``
    (handler time only, the PR-8 series, unlabeled) and
    ``serve.http.request_us|route=...`` (request-head-parsed through
    response-drained — the series quantiles, ``/status`` tables, and
    the SLO window are derived from).
    """

    def __init__(
        self,
        *,
        metrics: Optional[MetricsRegistry] = None,
        access_log: Optional[AccessLog] = None,
        slo: Optional[SloWindow] = None,
        wall=time.time,
    ) -> None:
        self.metrics = resolve_metrics(metrics)
        self.access_log = access_log
        self.slo = slo if slo is not None else SloWindow()
        self._wall = wall
        self.started = wall()

    # -- recording -----------------------------------------------------

    def record_request(
        self,
        *,
        method: str,
        route: str,
        path: str,
        status: int,
        request_us: float,
        handler_us: float,
        bytes_out: int,
        asn: Optional[int] = None,
    ) -> None:
        metrics = self.metrics
        metrics.inc("serve.http.requests")
        metrics.inc(labeled("serve.http.requests", route=route, status=status))
        if status >= 400:
            metrics.inc("serve.http.errors")
        metrics.observe("serve.http.latency_us", handler_us)
        metrics.observe(
            labeled("serve.http.request_us", route=route), request_us
        )
        self.slo.observe(request_us, error=status >= 500)
        if self.access_log is not None:
            self.access_log.log({
                "format": ACCESS_LOG_FORMAT,
                "t": round(self._wall(), 3),
                "method": method,
                "route": route,
                "path": path,
                "status": status,
                "us": round(request_us, 1),
                "bytes": bytes_out,
                **({"asn": asn} if asn is not None else {}),
            })

    def record_dropped(self, reason: str) -> None:
        """A request head we refused to parse (oversized, flood, ...)."""
        self.metrics.inc("serve.http.dropped")
        self.metrics.inc(labeled("serve.http.dropped", reason=reason))

    def record_exception(self, route: str, exc: BaseException) -> None:
        """An unexpected handler exception (rendered as a 500)."""
        self.metrics.inc("serve.http.exceptions")
        self.metrics.inc(labeled(
            "serve.http.exceptions", route=route, type=type(exc).__name__
        ))

    # -- reporting -----------------------------------------------------

    def uptime_seconds(self) -> float:
        return max(0.0, self._wall() - self.started)

    def metrics_text(self) -> str:
        """The ``/metrics`` body: the registry as Prometheus text."""
        return render_exposition(self.metrics.snapshot())

    def status_document(self, snapshot_digest: str) -> Dict[str, Any]:
        """The ``/status`` body: uptime, per-route tables, SLO window."""
        snap = self.metrics.snapshot()
        routes: Dict[str, Dict[str, Any]] = {}
        for name, value in snap.get("counters", {}).items():
            base, labels_map = split_labeled(name)
            if base != "serve.http.requests" or "route" not in labels_map:
                continue
            row = routes.setdefault(
                labels_map["route"], {"requests": 0, "errors": 0}
            )
            row["requests"] += int(value)
            try:
                if int(labels_map.get("status", 0)) >= 400:
                    row["errors"] += int(value)
            except ValueError:  # pragma: no cover - foreign label
                pass
        for name, summary in snap.get("histograms", {}).items():
            base, labels_map = split_labeled(name)
            if base != "serve.http.request_us" or "route" not in labels_map:
                continue
            row = routes.setdefault(
                labels_map["route"], {"requests": 0, "errors": 0}
            )
            count = int(summary.get("count", 0))
            if count:
                buckets = summary.get("buckets") or {}
                extremes = {
                    "minimum": float(summary.get("min", 0.0)),
                    "maximum": float(summary.get("max", 0.0)),
                }
                for label, q in (
                    ("p50_us", 0.50), ("p90_us", 0.90), ("p99_us", 0.99)
                ):
                    row[label] = round(quantile_from_buckets(
                        buckets, q, count=count, **extremes
                    ), 1)
                row["mean_us"] = round(
                    float(summary.get("sum", 0.0)) / count, 1
                )
        dropped = {}
        for name, value in snap.get("counters", {}).items():
            base, labels_map = split_labeled(name)
            if base == "serve.http.dropped" and "reason" in labels_map:
                dropped[labels_map["reason"]] = int(value)
        return {
            "snapshot": snapshot_digest,
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "requests": int(snap.get("counters", {}).get(
                "serve.http.requests", 0
            )),
            "errors": int(snap.get("counters", {}).get(
                "serve.http.errors", 0
            )),
            "dropped": dropped,
            "routes": {
                route: routes[route] for route in sorted(routes)
            },
            "slo": self.slo.summary(),
        }
