"""Incremental day-append: fold new simulated days into a store.

A store built for ``[start, end]`` advances to ``[start, end + N]``
without replaying the window.  The argument for why this matches a
full rebuild byte-for-byte:

1. A day's visibility class per ASN is a pure function of that day's
   live announcement multiset (the engine invariant the PR-2
   equivalence tests pin) — days are independent.
2. The store already holds every ASN's per-day classes for
   ``[start, end]`` as ``observed``/``single`` interval sets.
3. The appended days' classes come from the columnar engine's own
   consecutive-day diffing: :func:`schedule_from_world` over
   ``[end, end + N]`` (event-compressed — unchanged days cost
   nothing), replayed through one :class:`ActivityEngine`, runs
   clipped to ``(end, end + N]`` and unioned in with the linear
   interval merge.
4. Segmentation, taxonomy and shard encoding are the same pure
   functions of the resulting content that the full build uses — and
   the §4.2 ``open_ended`` flags are *recomputed*, not patched, so
   lives whose activity fell ``timeout`` days behind the new end flip
   closed exactly as a rebuild would close them.

Only shards whose bytes change are republished; the index and
snapshot manifest always refresh (the window moved, so the snapshot
digest moves), and the new snapshot registers in the run registry.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..asn.numbers import ASN
from ..bgp.activity import ActivityEngine, schedule_from_world
from ..core.taxonomy import classify
from ..runtime.cache import USE_ENV_FAULTS, cache_key
from ..runtime.profiling import PipelineStats
from ..timeline.intervals import Interval
from .index import StoreIndex
from .store import (
    AsnRecord,
    ServeStoreError,
    build_serve_records,
    derive_op_lives,
    publish_store,
)

__all__ = ["append_days"]


def append_days(
    store_dir: Union[str, Path],
    world: Any,
    days: int = 1,
    *,
    faults: Any = USE_ENV_FAULTS,
    stats: Optional[PipelineStats] = None,
    runs_index: Union[str, Path, None] = None,
) -> Dict[str, Any]:
    """Advance a store's window by ``days``; returns the new index doc.

    ``world`` must be the store's exact world (same config — enforced
    via the config hash in the index), re-simulated or still in
    memory.  Raises :class:`ServeStoreError` when the store and world
    disagree or the append would run past the world's last day.
    """
    if days < 1:
        raise ServeStoreError("append needs at least one day")
    stats = stats if stats is not None else PipelineStats()
    index = StoreIndex.open(store_dir, faults=faults)
    meta = index.meta
    if index.doc.get("config_hash") != cache_key(config=world.config):
        raise ServeStoreError(
            "world config does not match the store's config hash; "
            "appending a different world would corrupt the snapshot"
        )
    old_end = meta.end
    new_end = old_end + days
    if new_end > world.config.end_day:
        raise ServeStoreError(
            f"append would pass the world's last simulated day "
            f"({new_end} > {world.config.end_day})"
        )

    records: Dict[ASN, AsnRecord] = {}
    for asns, shard_records in index._shards:
        for record in shard_records:
            records[record.asn] = record

    with stats.stage(
        "serve:append", items=days, component="serve"
    ) as span:
        # 3 — classes for the appended days via the engine's diffing
        schedule = schedule_from_world(world, old_end, new_end)
        engine = ActivityEngine(
            world.topology,
            list(world.collectors),
            min_corroboration=meta.min_corroboration,
        )
        engine.apply(old_end, Counter(dict(schedule.base)))
        for day, added, removed in schedule.changes:
            engine.apply(day, Counter(dict(added)), Counter(dict(removed)))
        runs = engine.finish(new_end)
        span.set_attr("changed_days", schedule.changed_days)

        touched = 0
        for asn, asn_runs in runs.items():
            record = records.get(asn)
            for cls, run_start, run_end in asn_runs:
                start = max(run_start, old_end + 1)
                if start > run_end:
                    continue  # entirely inside the already-stored window
                if record is None:
                    record = records[asn] = AsnRecord(asn=asn)
                iv = Interval(start, run_end)
                if cls == 2:
                    record.observed = record.observed.add(iv)
                else:
                    record.single = record.single.add(iv)
                touched += 1
        span.set_attr("touched_runs", touched)

        # 4 — re-derive everything derived (pure functions of content)
        new_meta = dataclasses.replace(meta, end=new_end)
        admin_lives = {
            asn: record.admin for asn, record in records.items() if record.admin
        }
        op_lives = derive_op_lives(records, new_meta)
        taxonomy = classify(admin_lives, op_lives, metrics=stats.metrics)
        tables = {
            asn: _activity_of(record)
            for asn, record in records.items()
            if record.observed or record.single
        }
        new_records = build_serve_records(admin_lives, op_lives, tables, taxonomy)

    return publish_store(
        store_dir,
        new_records,
        new_meta,
        world.config,
        faults=faults,
        stats=stats,
        runs_index=runs_index,
    )


def _activity_of(record: AsnRecord):
    from ..lifetimes.bgp import OperationalActivity

    return OperationalActivity(
        asn=record.asn, observed=record.observed, single_peer=record.single
    )
