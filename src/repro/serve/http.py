"""Stdlib-asyncio HTTP/JSON front end over a :class:`StoreIndex`.

A deliberately small HTTP/1.1 server — request-line + header parsing,
keep-alive, ``Content-Length``-framed responses — with no dependencies
beyond ``asyncio``.  Routes:

===================================  =====================================
``GET /healthz``                     liveness probe (+ rolling SLO window)
``GET /snapshot``                    snapshot identity (manifest digest)
``GET /metrics``                     Prometheus text exposition
``GET /status``                      uptime, per-route tables, SLO window
``GET /asn/<n>/lives``               both lifetime datasets of one ASN
``GET /asn/<n>/taxonomy``            §5 categories of one ASN
``GET /asn/<n>/as-of/<YYYY-MM-DD>``  the ASN's state on one day
``GET /range/<lo>-<hi>``             per-ASN summaries over an ASN range
``GET /range/<lo>-<hi>/as-of/<d>``   allocated/active ASNs on one day
===================================  =====================================

Range routes accept ``?limit=N`` (capped at
:data:`~repro.serve.index.DEFAULT_RANGE_LIMIT`).  Unknown ASNs are 404,
malformed paths 400, every error body is JSON.  An unexpected handler
exception is a 500 JSON body (never a torn connection) and lands in
``serve.http.exceptions``.

Telemetry goes through :class:`~repro.serve.telemetry.ServerTelemetry`:
per-route+status labeled counters and latency histograms (labels use
route *templates* like ``/asn/{n}/lives`` so cardinality is bounded by
this route table, not by client traffic), the sliding SLO window, and
the optional structured access log.  Request heads we refuse to parse
(oversized line, malformed head, header flood) are counted under
``serve.http.dropped`` and — where the byte stream still permits a
response — answered with a ``400`` + ``Connection: close`` instead of
a silent hangup.
"""

from __future__ import annotations

import asyncio
import json
from time import perf_counter
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from ..runtime.observability import MetricsRegistry, resolve_metrics
from ..timeline.dates import from_iso
from .index import DEFAULT_RANGE_LIMIT, StoreIndex
from .telemetry import ServerTelemetry

__all__ = [
    "LifetimesServer",
    "MAX_REQUEST_LINE",
    "MAX_HEADER_LINES",
    "route_template",
]

#: Request-line / header hard limits (a query API needs no more).
MAX_REQUEST_LINE = 4096
MAX_HEADER_LINES = 64

_SERVER_NAME = "repro-serve"

_JSON = "application/json"
_PROM_TEXT = "text/plain; version=0.0.4; charset=utf-8"


class _BadRequest(Exception):
    """Raised by route parsing; rendered as a 400 JSON body."""


class _DroppedRequest(Exception):
    """A request head we refuse to parse.

    ``reason`` feeds ``serve.http.dropped``; ``respond`` says whether
    the byte stream is still in a state where a 400 can be written
    (always followed by ``Connection: close`` — framing is suspect).
    """

    def __init__(self, reason: str, respond: bool) -> None:
        super().__init__(reason)
        self.reason = reason
        self.respond = respond


def _parse_int(text: str, what: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise _BadRequest(f"{what} must be an integer") from None
    if value < 0:
        raise _BadRequest(f"{what} must be non-negative")
    return value


def _parse_day(text: str):
    try:
        return from_iso(unquote(text))
    except ValueError:
        raise _BadRequest("dates must be YYYY-MM-DD") from None


def _parse_range(text: str) -> Tuple[int, int]:
    lo, sep, hi = text.partition("-")
    if not sep:
        raise _BadRequest("ranges are <lo>-<hi>")
    lo_n = _parse_int(lo, "range lo")
    hi_n = _parse_int(hi, "range hi")
    if hi_n < lo_n:
        raise _BadRequest("range hi precedes lo")
    return lo_n, hi_n


def route_template(path: str) -> str:
    """The bounded-cardinality route label for a request path.

    Every path maps into a fixed, finite set of templates — well-formed
    routes get their shape (``/asn/{n}/lives``), near-misses collapse
    to a prefix bucket (``/asn/*``), everything else to ``unmatched``.
    Metric labels therefore never echo client-controlled strings.
    """
    if path in ("/healthz", "/snapshot", "/metrics", "/status"):
        return path
    segments = [s for s in path.split("/") if s]
    if segments and segments[0] == "asn":
        if len(segments) == 3 and segments[2] == "lives":
            return "/asn/{n}/lives"
        if len(segments) == 3 and segments[2] == "taxonomy":
            return "/asn/{n}/taxonomy"
        if len(segments) == 4 and segments[2] == "as-of":
            return "/asn/{n}/as-of/{date}"
        return "/asn/*"
    if segments and segments[0] == "range":
        if len(segments) == 2:
            return "/range/{lo}-{hi}"
        if len(segments) == 4 and segments[2] == "as-of":
            return "/range/{lo}-{hi}/as-of/{date}"
        return "/range/*"
    return "unmatched"


def _asn_of(path: str) -> Optional[int]:
    """The ASN a path addresses, when it addresses one (for access logs)."""
    segments = [s for s in path.split("/") if s]
    if len(segments) >= 2 and segments[0] == "asn":
        try:
            return int(segments[1])
        except ValueError:
            return None
    return None


def _json_body(document: Dict[str, Any]) -> bytes:
    return (
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


class LifetimesServer:
    """Serve one immutable :class:`StoreIndex` snapshot over HTTP."""

    def __init__(
        self,
        index: StoreIndex,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        telemetry: Optional[ServerTelemetry] = None,
    ) -> None:
        self.index = index
        self.host = host
        self.port = port
        if telemetry is not None:
            # an injected telemetry brings its own registry; keep the
            # server's metrics handle pointing at the same place
            self.telemetry = telemetry
            self.metrics = telemetry.metrics
        else:
            self.metrics = resolve_metrics(metrics)
            self.telemetry = ServerTelemetry(metrics=self.metrics)
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._client, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.telemetry.access_log is not None:
            self.telemetry.access_log.close()

    # -- connection handling -------------------------------------------

    async def _client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._serve_client(reader, writer)
        except asyncio.CancelledError:
            pass  # event-loop shutdown cancelled this connection mid-close

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _DroppedRequest as drop:
                    self.telemetry.record_dropped(drop.reason)
                    if drop.respond:
                        body = _json_body({"error": drop.reason})
                        writer.write(
                            self._head(400, len(body), False, _JSON) + body
                        )
                        await writer.drain()
                    break
                if request is None:
                    break
                t_request = perf_counter()
                method, target, keep_alive = request
                path = urlsplit(target).path
                t_handler = perf_counter()
                status, body, content_type, route = self._dispatch(
                    method, target, path
                )
                handler_us = (perf_counter() - t_handler) * 1e6
                writer.write(
                    self._head(status, len(body), keep_alive, content_type)
                    + body
                )
                await writer.drain()
                self.telemetry.record_request(
                    method=method,
                    route=route,
                    path=path,
                    status=status,
                    request_us=(perf_counter() - t_request) * 1e6,
                    handler_us=handler_us,
                    bytes_out=len(body),
                    asn=_asn_of(path),
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bool]]:
        """One request head → (method, target, keep_alive), EOF → None.

        Unparseable heads raise :class:`_DroppedRequest` so the caller
        can count them and, when ``respond`` is set, still answer 400.
        """
        try:
            line = await reader.readline()
        except ValueError:
            # The stream-level line limit tripped: the line is larger
            # than the reader buffer, framing is gone.  The writer side
            # is still usable, so a closing 400 can go out.
            raise _DroppedRequest("oversized-line", True) from None
        except ConnectionError:
            return None
        if not line:
            return None
        if len(line) > MAX_REQUEST_LINE:
            raise _DroppedRequest("oversized-line", True)
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _DroppedRequest("malformed-head", True)
        method, target, version = parts
        keep_alive = version.upper() != "HTTP/1.0"
        for _ in range(MAX_HEADER_LINES):
            try:
                header = await reader.readline()
            except ValueError:
                raise _DroppedRequest("oversized-line", True) from None
            except ConnectionError:
                return None
            if header in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "connection":
                keep_alive = value.strip().lower() != "close"
        else:
            raise _DroppedRequest("header-flood", True)
        return method, target, keep_alive

    @staticmethod
    def _head(
        status: int, length: int, keep_alive: bool, content_type: str = _JSON
    ) -> bytes:
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            500: "Internal Server Error",
        }.get(status, "Error")
        connection = "keep-alive" if keep_alive else "close"
        return (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Server: {_SERVER_NAME}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {length}\r\n"
            f"Connection: {connection}\r\n"
            f"\r\n"
        ).encode("latin-1")

    # -- routing -------------------------------------------------------

    def _dispatch(
        self, method: str, target: str, path: str
    ) -> Tuple[int, bytes, str, str]:
        """One request → (status, body, content type, route template).

        Everything a handler can throw is caught here: expected parse
        failures as 400, anything else as a 500 JSON body counted in
        ``serve.http.exceptions`` — a broken shard or poisoned index
        must never tear down the connection without an answer.
        """
        route = route_template(path)
        if method != "GET":
            return (
                405,
                _json_body({"error": "only GET is supported"}),
                _JSON,
                route,
            )
        try:
            if path == "/metrics":
                return (
                    200,
                    self.telemetry.metrics_text().encode("utf-8"),
                    _PROM_TEXT,
                    route,
                )
            if path == "/status":
                document = self.telemetry.status_document(self.index.digest)
                return 200, _json_body(document), _JSON, route
            query = parse_qs(urlsplit(target).query)
            status, document = self._route(path, query)
        except _BadRequest as exc:
            return 400, _json_body({"error": str(exc)}), _JSON, route
        except Exception as exc:  # noqa: BLE001 - catch-all is the contract
            self.telemetry.record_exception(route, exc)
            return (
                500,
                _json_body({"error": "internal server error"}),
                _JSON,
                route,
            )
        return status, _json_body(document), _JSON, route

    def _route(
        self, path: str, query: Dict[str, list]
    ) -> Tuple[int, Dict[str, Any]]:
        limit = DEFAULT_RANGE_LIMIT
        if "limit" in query:
            limit = _parse_int(query["limit"][-1], "limit")
        segments = [s for s in path.split("/") if s]
        if path == "/healthz":
            return 200, {
                "status": "ok",
                "snapshot": self.index.digest,
                "slo": self.telemetry.slo.summary(),
            }
        if path == "/snapshot":
            return 200, self.index.snapshot()
        if len(segments) >= 2 and segments[0] == "asn":
            asn = _parse_int(segments[1], "asn")
            if len(segments) == 3 and segments[2] == "lives":
                return self._found(self.index.lives(asn))
            if len(segments) == 3 and segments[2] == "taxonomy":
                return self._found(self.index.taxonomy(asn))
            if len(segments) == 4 and segments[2] == "as-of":
                return self._found(self.index.as_of(asn, _parse_day(segments[3])))
            raise _BadRequest(
                "asn routes: /asn/<n>/lives, /asn/<n>/taxonomy, "
                "/asn/<n>/as-of/<date>"
            )
        if len(segments) >= 2 and segments[0] == "range":
            lo, hi = _parse_range(segments[1])
            if len(segments) == 2:
                return 200, self.index.range_summary(lo, hi, limit=limit)
            if len(segments) == 4 and segments[2] == "as-of":
                return 200, self.index.range_as_of(
                    lo, hi, _parse_day(segments[3]), limit=limit
                )
            raise _BadRequest(
                "range routes: /range/<lo>-<hi>, /range/<lo>-<hi>/as-of/<date>"
            )
        return 404, {"error": f"no route for {path}"}

    @staticmethod
    def _found(document: Optional[Dict[str, Any]]) -> Tuple[int, Dict[str, Any]]:
        if document is None:
            return 404, {"error": "unknown asn"}
        return 200, document
