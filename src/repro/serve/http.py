"""Stdlib-asyncio HTTP/JSON front end over a :class:`StoreIndex`.

A deliberately small HTTP/1.1 server — request-line + header parsing,
keep-alive, ``Content-Length``-framed JSON responses — with no
dependencies beyond ``asyncio``.  Routes:

===================================  =====================================
``GET /healthz``                     liveness probe
``GET /snapshot``                    snapshot identity (manifest digest)
``GET /asn/<n>/lives``               both lifetime datasets of one ASN
``GET /asn/<n>/taxonomy``            §5 categories of one ASN
``GET /asn/<n>/as-of/<YYYY-MM-DD>``  the ASN's state on one day
``GET /range/<lo>-<hi>``             per-ASN summaries over an ASN range
``GET /range/<lo>-<hi>/as-of/<d>``   allocated/active ASNs on one day
===================================  =====================================

Range routes accept ``?limit=N`` (capped at
:data:`~repro.serve.index.DEFAULT_RANGE_LIMIT`).  Unknown ASNs are 404,
malformed paths 400, every error body is JSON.  Request counts and
latency land in the metrics registry (``serve.http.*``).
"""

from __future__ import annotations

import asyncio
import json
from time import perf_counter
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from ..runtime.observability import MetricsRegistry, resolve_metrics
from ..timeline.dates import from_iso
from .index import DEFAULT_RANGE_LIMIT, StoreIndex

__all__ = ["LifetimesServer", "MAX_REQUEST_LINE", "MAX_HEADER_LINES"]

#: Request-line / header hard limits (a query API needs no more).
MAX_REQUEST_LINE = 4096
MAX_HEADER_LINES = 64

_SERVER_NAME = "repro-serve"


class _BadRequest(Exception):
    """Raised by route parsing; rendered as a 400 JSON body."""


def _parse_int(text: str, what: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise _BadRequest(f"{what} must be an integer") from None
    if value < 0:
        raise _BadRequest(f"{what} must be non-negative")
    return value


def _parse_day(text: str):
    try:
        return from_iso(unquote(text))
    except ValueError:
        raise _BadRequest("dates must be YYYY-MM-DD") from None


def _parse_range(text: str) -> Tuple[int, int]:
    lo, sep, hi = text.partition("-")
    if not sep:
        raise _BadRequest("ranges are <lo>-<hi>")
    lo_n = _parse_int(lo, "range lo")
    hi_n = _parse_int(hi, "range hi")
    if hi_n < lo_n:
        raise _BadRequest("range hi precedes lo")
    return lo_n, hi_n


class LifetimesServer:
    """Serve one immutable :class:`StoreIndex` snapshot over HTTP."""

    def __init__(
        self,
        index: StoreIndex,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.index = index
        self.host = host
        self.port = port
        self.metrics = resolve_metrics(metrics)
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._client, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------

    async def _client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._serve_client(reader, writer)
        except asyncio.CancelledError:
            pass  # event-loop shutdown cancelled this connection mid-close

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, keep_alive = request
                t0 = perf_counter()
                status, document = self._respond(method, target)
                self.metrics.observe(
                    "serve.http.latency_us", (perf_counter() - t0) * 1e6
                )
                self.metrics.inc("serve.http.requests")
                if status >= 400:
                    self.metrics.inc("serve.http.errors")
                body = (
                    json.dumps(document, sort_keys=True, separators=(",", ":"))
                    + "\n"
                ).encode("utf-8")
                writer.write(self._head(status, len(body), keep_alive) + body)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bool]]:
        """One request head → (method, target, keep_alive), EOF → None."""
        try:
            line = await reader.readline()
        except (ValueError, ConnectionError):
            return None
        if not line:
            return None
        if len(line) > MAX_REQUEST_LINE:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, target, version = parts
        keep_alive = version.upper() != "HTTP/1.0"
        for _ in range(MAX_HEADER_LINES):
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "connection":
                keep_alive = value.strip().lower() != "close"
        else:
            return None  # header flood: drop the connection
        return method, target, keep_alive

    @staticmethod
    def _head(status: int, length: int, keep_alive: bool) -> bytes:
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
        }.get(status, "Error")
        connection = "keep-alive" if keep_alive else "close"
        return (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Server: {_SERVER_NAME}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {length}\r\n"
            f"Connection: {connection}\r\n"
            f"\r\n"
        ).encode("latin-1")

    # -- routing -------------------------------------------------------

    def _respond(self, method: str, target: str) -> Tuple[int, Dict[str, Any]]:
        if method != "GET":
            return 405, {"error": "only GET is supported"}
        url = urlsplit(target)
        query = parse_qs(url.query)
        try:
            return self._route(url.path, query)
        except _BadRequest as exc:
            return 400, {"error": str(exc)}

    def _route(
        self, path: str, query: Dict[str, list]
    ) -> Tuple[int, Dict[str, Any]]:
        limit = DEFAULT_RANGE_LIMIT
        if "limit" in query:
            limit = _parse_int(query["limit"][-1], "limit")
        segments = [s for s in path.split("/") if s]
        if path == "/healthz":
            return 200, {"status": "ok", "snapshot": self.index.digest}
        if path == "/snapshot":
            return 200, self.index.snapshot()
        if len(segments) >= 2 and segments[0] == "asn":
            asn = _parse_int(segments[1], "asn")
            if len(segments) == 3 and segments[2] == "lives":
                return self._found(self.index.lives(asn))
            if len(segments) == 3 and segments[2] == "taxonomy":
                return self._found(self.index.taxonomy(asn))
            if len(segments) == 4 and segments[2] == "as-of":
                return self._found(self.index.as_of(asn, _parse_day(segments[3])))
            raise _BadRequest(
                "asn routes: /asn/<n>/lives, /asn/<n>/taxonomy, "
                "/asn/<n>/as-of/<date>"
            )
        if len(segments) >= 2 and segments[0] == "range":
            lo, hi = _parse_range(segments[1])
            if len(segments) == 2:
                return 200, self.index.range_summary(lo, hi, limit=limit)
            if len(segments) == 4 and segments[2] == "as-of":
                return 200, self.index.range_as_of(
                    lo, hi, _parse_day(segments[3]), limit=limit
                )
            raise _BadRequest(
                "range routes: /range/<lo>-<hi>, /range/<lo>-<hi>/as-of/<date>"
            )
        return 404, {"error": f"no route for {path}"}

    @staticmethod
    def _found(document: Optional[Dict[str, Any]]) -> Tuple[int, Dict[str, Any]]:
        if document is None:
            return 404, {"error": "unknown asn"}
        return 200, document
