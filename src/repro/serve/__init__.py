"""Lifetimes-as-a-service: a read-optimized query layer over the
paper's per-ASN datasets.

The batch pipeline (``repro.simulation`` → ``repro.lifetimes`` →
``repro.core``) answers "rebuild everything and compare"; this package
answers "what is AS 3333's story?" without a rebuild:

* :mod:`repro.serve.store` — the sharded ``serve-store/v1`` on-disk
  format: canonical-JSON shards over the sorted ASN universe, a
  binary-searchable shard index, and a deterministic snapshot manifest
  registered in the run registry.  All writes go through the artifact
  cache's atomic publish with byte-for-byte read-back verification.
* :mod:`repro.serve.index` — :class:`StoreIndex`, the in-memory view
  answering point, as-of-date, and range queries in O(log n).
* :mod:`repro.serve.append` — incremental day-append, byte-identical
  to a full rebuild over the extended window.
* :mod:`repro.serve.http` — the stdlib-asyncio HTTP/JSON front end.
* :mod:`repro.serve.telemetry` — live service telemetry: labeled
  per-route metrics, Prometheus text exposition (``/metrics``),
  structured JSONL access logs, and the sliding-window SLO tracker.
* :mod:`repro.serve.loadgen` — the deterministic zipf-skewed load
  generator feeding the perf gate, with an end-to-end ``/metrics``
  consistency check (client-observed vs server-reported).

CLI entry points: ``repro serve-build``, ``repro serve-append``,
``repro serve``, ``repro serve-bench``.
"""

from .append import append_days
from .http import LifetimesServer, route_template
from .index import DEFAULT_RANGE_LIMIT, StoreIndex
from .loadgen import (
    LoadReport,
    QueryPlan,
    plan_queries,
    run_load,
    run_load_checked,
    run_load_sync,
)
from .telemetry import (
    AccessLog,
    ServerTelemetry,
    SloWindow,
    labeled,
    parse_exposition,
    render_exposition,
    split_labeled,
)
from .store import (
    DEFAULT_SHARD_SIZE,
    INDEX_NAME,
    MANIFEST_NAME,
    SERVE_SHARD_FORMAT,
    SERVE_STORE_FORMAT,
    AsnRecord,
    ServeStoreError,
    StoreMeta,
    build_store,
    config_from_fingerprint,
    decode_shard,
    encode_shard,
    publish_store,
)

__all__ = [
    "append_days",
    "LifetimesServer",
    "route_template",
    "DEFAULT_RANGE_LIMIT",
    "StoreIndex",
    "LoadReport",
    "QueryPlan",
    "plan_queries",
    "run_load",
    "run_load_checked",
    "run_load_sync",
    "AccessLog",
    "ServerTelemetry",
    "SloWindow",
    "labeled",
    "parse_exposition",
    "render_exposition",
    "split_labeled",
    "DEFAULT_SHARD_SIZE",
    "INDEX_NAME",
    "MANIFEST_NAME",
    "SERVE_SHARD_FORMAT",
    "SERVE_STORE_FORMAT",
    "AsnRecord",
    "ServeStoreError",
    "StoreMeta",
    "build_store",
    "config_from_fingerprint",
    "decode_shard",
    "encode_shard",
    "publish_store",
]
