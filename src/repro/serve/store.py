"""The ``serve-store/v1`` on-disk format: build, publish, load.

A serve store is a read-optimized snapshot of the paper's two
per-ASN datasets (administrative and operational lifetimes, §4) plus
the §5 taxonomy assignment, laid out for point lookups instead of
batch analysis:

``store.json``
    The shard index: snapshot identity (the run-manifest digest),
    build parameters, and a sorted table of ASN-range shards with
    their payload sha256s.  Queries binary-search this table first.
``shard-NNNNN.json``
    One canonical-JSON document per ASN-range shard: a sorted ``asns``
    array plus parallel per-ASN columns — admin lifetime rows,
    operational lifetime rows, and the raw activity day sets in the
    same flat ``(start, end, start, end, ...)`` tuple form
    :class:`~repro.timeline.intervals.IntervalSet` pickles to.
``snapshot_manifest.json``
    The run manifest identifying the snapshot (deterministic: config
    fingerprint + serve settings, no timestamps), registered in the
    PR-5 ``runs.jsonl`` registry so digest prefixes resolve to stores.

Every file goes through :class:`~repro.runtime.cache.ArtifactCache`'s
*named-entry* publish path — unique temps, manifest-first atomic
renames, sha256 sidecars, ambient fault injection — and every publish
is read back and compared byte-for-byte, retrying on torn or failed
writes and raising a typed :class:`ServeStoreError` when the retry
budget runs out.  Store bytes are a pure function of the dataset
content, which is what makes the incremental day-append
(:mod:`repro.serve.append`) provably equivalent to a full rebuild:
identical content ⇒ identical files.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..asn.numbers import ASN
from ..core.taxonomy import Category, TaxonomyResult, classify
from ..lifetimes.bgp import (
    DEFAULT_TIMEOUT,
    OperationalActivity,
    build_operational_dataset,
    lifetimes_from_activity,
)
from ..lifetimes.records import AdminLifetime, BgpLifetime
from ..runtime.cache import (
    USE_ENV_FAULTS,
    ArtifactCache,
    CacheStoreError,
    cache_key,
)
from ..runtime.observability import build_run_manifest
from ..runtime.profiling import PipelineStats
from ..runtime.runs import record_run
from ..timeline.dates import Day
from ..timeline.intervals import IntervalSet

__all__ = [
    "SERVE_STORE_FORMAT",
    "SERVE_SHARD_FORMAT",
    "INDEX_NAME",
    "MANIFEST_NAME",
    "DEFAULT_SHARD_SIZE",
    "CATEGORY_ORDER",
    "ServeStoreError",
    "AsnRecord",
    "StoreMeta",
    "build_serve_records",
    "encode_shard",
    "decode_shard",
    "plan_shards",
    "store_bytes_verified",
    "load_bytes_verified",
    "publish_store",
    "build_store",
    "config_from_fingerprint",
]

#: Format tag of the shard index document (``store.json``).
SERVE_STORE_FORMAT = "serve-store/v1"

#: Format tag of each shard document.
SERVE_SHARD_FORMAT = "serve-shard/v1"

INDEX_NAME = "store.json"
MANIFEST_NAME = "snapshot_manifest.json"

#: ASNs per shard.  Shards are consecutive slices of the sorted ASN
#: universe, so the boundaries are a pure function of the content —
#: append rebuilds the same plan a full build would.
DEFAULT_SHARD_SIZE = 512

#: Fixed category order; shard rows store the index into this list.
CATEGORY_ORDER: Tuple[Category, ...] = (
    Category.COMPLETE_OVERLAP,
    Category.PARTIAL_OVERLAP,
    Category.UNUSED,
    Category.OUTSIDE_DELEGATION,
)
_CATEGORY_ID = {category: i for i, category in enumerate(CATEGORY_ORDER)}

#: Publish/read retry budgets under fault injection.  Ambient injectors
#: fire continually, and a serve store cannot degrade to "built but not
#: persisted" the way a cache entry can — so publishes retry until the
#: read-back matches and reads retry transient I/O errors, with a typed
#: error once the budget is gone.
DEFAULT_PUBLISH_RETRIES = 8
DEFAULT_READ_RETRIES = 8


class ServeStoreError(Exception):
    """A serve store could not be published, read, or validated."""


# -- record model -----------------------------------------------------------


@dataclass
class AsnRecord:
    """Everything the store knows about one ASN."""

    asn: ASN
    admin: List[AdminLifetime] = field(default_factory=list)
    op: List[BgpLifetime] = field(default_factory=list)
    admin_cats: List[Category] = field(default_factory=list)
    op_cats: List[Category] = field(default_factory=list)
    observed: IntervalSet = field(default_factory=IntervalSet)
    single: IntervalSet = field(default_factory=IntervalSet)


@dataclass(frozen=True)
class StoreMeta:
    """Build parameters every query and append must agree on."""

    start: Day
    end: Day
    timeout: int = DEFAULT_TIMEOUT
    min_peers: int = 2
    min_corroboration: int = 2
    shard_size: int = DEFAULT_SHARD_SIZE

    def to_json_dict(self) -> Dict[str, int]:
        return {
            "start": self.start,
            "end": self.end,
            "timeout": self.timeout,
            "min_peers": self.min_peers,
            "min_corroboration": self.min_corroboration,
            "shard_size": self.shard_size,
        }

    @classmethod
    def from_json_dict(cls, doc: Mapping[str, Any]) -> "StoreMeta":
        try:
            return cls(**{f.name: int(doc[f.name]) for f in dataclasses.fields(cls)})
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeStoreError(f"malformed store meta: {exc}") from exc


def build_serve_records(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    op_lives: Mapping[ASN, Sequence[BgpLifetime]],
    tables: Mapping[ASN, OperationalActivity],
    taxonomy: TaxonomyResult,
) -> Dict[ASN, AsnRecord]:
    """Join the batch datasets into per-ASN records, ASN-sorted.

    The universe is the union of every source: admin-only ASNs (the
    taxonomy's *unused* population), ASNs with operational lives, and
    ASNs whose activity never cleared the ``min_peers`` threshold but
    still carry raw day sets the append path needs.
    """
    out: Dict[ASN, AsnRecord] = {}
    for asn in sorted(set(admin_lives) | set(op_lives) | set(tables)):
        record = AsnRecord(asn=asn)
        record.admin = list(admin_lives.get(asn, ()))
        record.op = list(op_lives.get(asn, ()))
        record.admin_cats = [
            taxonomy.admin_assignment[(asn, i)] for i in range(len(record.admin))
        ]
        record.op_cats = [
            taxonomy.op_assignment[(asn, i)] for i in range(len(record.op))
        ]
        activity = tables.get(asn)
        if activity is not None:
            record.observed = activity.observed
            record.single = activity.single_peer
        out[asn] = record
    return out


# -- shard encoding ---------------------------------------------------------


def _flat(ivs: IntervalSet) -> List[Day]:
    flat: List[Day] = []
    for iv in ivs:
        flat.append(iv.start)
        flat.append(iv.end)
    return flat


def _unflat(flat: Sequence[Day]) -> IntervalSet:
    return IntervalSet._from_flat(tuple(flat))


def encode_shard(records: Sequence[AsnRecord]) -> bytes:
    """Canonical-JSON bytes of one shard (pure function of content)."""
    pool: List[str] = []
    pool_index: Dict[str, int] = {}

    def intern(text: Optional[str]) -> int:
        if text is None:
            return -1
        idx = pool_index.get(text)
        if idx is None:
            idx = pool_index[text] = len(pool)
            pool.append(text)
        return idx

    asns: List[int] = []
    admin_col: List[List[List[int]]] = []
    op_col: List[List[List[int]]] = []
    observed_col: List[List[Day]] = []
    single_col: List[List[Day]] = []
    for record in records:
        asns.append(record.asn)
        admin_rows = []
        for life, category in zip(record.admin, record.admin_cats):
            flags = (
                int(life.open_ended)
                | int(life.via_nir) << 1
                | int(life.left_censored) << 2
            )
            admin_rows.append([
                life.start,
                life.end,
                life.reg_date,
                [intern(reg) for reg in life.registries],
                intern(life.cc),
                intern(life.org_id),
                flags,
                _CATEGORY_ID[category],
            ])
        admin_col.append(admin_rows)
        op_col.append([
            [life.start, life.end, int(life.open_ended), _CATEGORY_ID[category]]
            for life, category in zip(record.op, record.op_cats)
        ])
        observed_col.append(_flat(record.observed))
        single_col.append(_flat(record.single))
    doc = {
        "format": SERVE_SHARD_FORMAT,
        "asns": asns,
        "admin": admin_col,
        "op": op_col,
        "observed": observed_col,
        "single": single_col,
        "pool": pool,
    }
    return (json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def decode_shard(blob: bytes) -> List[AsnRecord]:
    """Parse shard bytes back into records (inverse of :func:`encode_shard`)."""
    try:
        doc = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ServeStoreError(f"shard is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != SERVE_SHARD_FORMAT:
        raise ServeStoreError(f"shard is not a {SERVE_SHARD_FORMAT} document")
    pool = doc["pool"]

    def lookup(idx: int) -> Optional[str]:
        return None if idx < 0 else pool[idx]

    out: List[AsnRecord] = []
    try:
        rows = zip(
            doc["asns"], doc["admin"], doc["op"], doc["observed"], doc["single"]
        )
        for asn, admin_rows, op_rows, observed, single in rows:
            record = AsnRecord(asn=asn)
            for start, end, reg_date, regs, cc, org, flags, cat in admin_rows:
                record.admin.append(AdminLifetime(
                    asn=asn,
                    start=start,
                    end=end,
                    reg_date=reg_date,
                    registries=tuple(pool[i] for i in regs),
                    cc=lookup(cc) or "",
                    org_id=lookup(org),
                    open_ended=bool(flags & 1),
                    via_nir=bool(flags & 2),
                    left_censored=bool(flags & 4),
                ))
                record.admin_cats.append(CATEGORY_ORDER[cat])
            for start, end, open_ended, cat in op_rows:
                record.op.append(BgpLifetime(
                    asn=asn, start=start, end=end, open_ended=bool(open_ended)
                ))
                record.op_cats.append(CATEGORY_ORDER[cat])
            record.observed = _unflat(observed)
            record.single = _unflat(single)
            out.append(record)
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise ServeStoreError(f"malformed shard row: {exc}") from exc
    return out


def plan_shards(
    asns: Sequence[ASN], shard_size: int = DEFAULT_SHARD_SIZE
) -> List[Tuple[str, int, int]]:
    """``(file name, first index, last index)`` per shard, in ASN order."""
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    plan = []
    for number, lo in enumerate(range(0, len(asns), shard_size)):
        hi = min(lo + shard_size, len(asns)) - 1
        plan.append((f"shard-{number:05d}.json", lo, hi))
    return plan


# -- verified publish / load -----------------------------------------------


def store_publisher(
    store_dir: Union[str, Path], *, faults: Any = USE_ENV_FAULTS
) -> ArtifactCache:
    """The cache instance all store file I/O routes through."""
    return ArtifactCache(store_dir, faults=faults, strict_store=True)


def store_bytes_verified(
    cache: ArtifactCache,
    name: str,
    blob: bytes,
    *,
    retries: int = DEFAULT_PUBLISH_RETRIES,
) -> None:
    """Publish one store file and prove it landed intact.

    Each attempt is a full atomic publish followed by a verified
    read-back compared byte-for-byte — a torn write, an injected I/O
    error, or a mangled payload shows up as a mismatch and is retried.
    """
    failure = "never attempted"
    for _attempt in range(max(1, retries)):
        try:
            cache.store_named(name, blob, strict=True)
        except CacheStoreError as exc:
            failure = str(exc)
            continue
        if cache.load_named(name) == blob:
            return
        failure = "read-back did not match published bytes"
    raise ServeStoreError(
        f"could not publish store file {name} after {retries} attempts: {failure}"
    )


def load_bytes_verified(
    cache: ArtifactCache, name: str, *, retries: int = DEFAULT_READ_RETRIES
) -> bytes:
    """Verified bytes of one store file, retrying transient read faults."""
    for _attempt in range(max(1, retries)):
        blob = cache.load_named(name)
        if blob is not None:
            return blob
    raise ServeStoreError(
        f"store file {name} is missing, unreadable, or failed verification "
        f"after {retries} attempts"
    )


# -- store assembly ---------------------------------------------------------


def _snapshot_manifest(config: Any, meta: StoreMeta) -> Dict[str, Any]:
    """The store's identity manifest.

    Built with ``stats=None`` on purpose: span digests, event logs and
    backend names describe *how* a store was produced, and a store
    reached by append must carry the same identity as one fully
    rebuilt — the digest covers config + serve parameters only.
    """
    return build_run_manifest(
        config=config,
        settings={"serve": meta.to_json_dict()},
        stats=None,
        git_root=Path(__file__).resolve().parent,
    )


def publish_store(
    store_dir: Union[str, Path],
    records: Mapping[ASN, AsnRecord],
    meta: StoreMeta,
    config: Any,
    *,
    faults: Any = USE_ENV_FAULTS,
    stats: Optional[PipelineStats] = None,
    runs_index: Union[str, Path, None] = None,
) -> Dict[str, Any]:
    """Write (or refresh) a complete store; returns the index document.

    Shard files whose bytes already match on disk are left untouched —
    this is what makes the append path cheap, and doubles as an
    end-to-end verification pass over the untouched shards.  Shards go
    out before the index, so a reader never sees an index referencing
    an unpublished shard; stale extra shards from a previous, larger
    plan are ignored by readers (the index is the source of truth).
    """
    stats = stats if stats is not None else PipelineStats()
    cache = store_publisher(store_dir, faults=faults)
    asns = sorted(records)
    plan = plan_shards(asns, meta.shard_size)
    manifest = _snapshot_manifest(config, meta)

    shard_rows = []
    published = 0
    with stats.stage("serve:publish", items=len(plan), component="serve") as span:
        for name, lo, hi in plan:
            shard_asns = asns[lo:hi + 1]
            blob = encode_shard([records[asn] for asn in shard_asns])
            existing = cache.load_named(name)
            if existing != blob:
                store_bytes_verified(cache, name, blob)
                published += 1
            shard_rows.append({
                "name": name,
                "lo": shard_asns[0],
                "hi": shard_asns[-1],
                "count": len(shard_asns),
                "sha256": hashlib.sha256(blob).hexdigest(),
            })
        index_doc = {
            "format": SERVE_STORE_FORMAT,
            "digest": manifest["digest"],
            "config_hash": manifest["config_hash"],
            "meta": meta.to_json_dict(),
            "counts": {
                "asns": len(asns),
                "admin_lives": sum(len(r.admin) for r in records.values()),
                "op_lives": sum(len(r.op) for r in records.values()),
            },
            "shards": shard_rows,
        }
        index_blob = (
            json.dumps(index_doc, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        manifest_blob = (
            json.dumps(manifest, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        if cache.load_named(MANIFEST_NAME) != manifest_blob:
            store_bytes_verified(cache, MANIFEST_NAME, manifest_blob)
        if cache.load_named(INDEX_NAME) != index_blob:
            store_bytes_verified(cache, INDEX_NAME, index_blob)
        span.set_attr("published", published)
    stats.drain_events_from(cache)
    if runs_index is not None:
        record_run(runs_index, manifest, {
            "store": Path(store_dir) / INDEX_NAME,
            "manifest": Path(store_dir) / MANIFEST_NAME,
        })
    return index_doc


def build_store(
    store_dir: Union[str, Path],
    world: Any,
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    *,
    start: Optional[Day] = None,
    end: Optional[Day] = None,
    timeout: int = DEFAULT_TIMEOUT,
    min_peers: int = 2,
    min_corroboration: int = 2,
    shard_size: int = DEFAULT_SHARD_SIZE,
    executor: Any = None,
    cache: Any = None,
    stats: Optional[PipelineStats] = None,
    faults: Any = USE_ENV_FAULTS,
    runs_index: Union[str, Path, None] = None,
) -> Dict[str, Any]:
    """Full rebuild: columnar activity over the window, then publish.

    The same columnar engine the batch pipeline uses rebuilds the
    per-ASN activity tables over ``[start, end]``; segmentation,
    taxonomy and encoding are shared with the append path, so the two
    produce byte-identical stores for the same day range.
    """
    stats = stats if stats is not None else PipelineStats()
    start = world.config.start_day if start is None else start
    end = world.config.end_day if end is None else end
    meta = StoreMeta(
        start=start,
        end=end,
        timeout=timeout,
        min_peers=min_peers,
        min_corroboration=min_corroboration,
        shard_size=shard_size,
    )
    op_lives, tables = build_operational_dataset(
        world,
        start=start,
        end=end,
        timeout=timeout,
        min_peers=min_peers,
        min_corroboration=min_corroboration,
        engine="columnar",
        executor=executor,
        cache=cache,
        stats=stats,
    )
    with stats.stage("serve:assemble", component="serve") as span:
        taxonomy = classify(admin_lives, op_lives, metrics=stats.metrics)
        records = build_serve_records(admin_lives, op_lives, tables, taxonomy)
        span.items = len(records)
    return publish_store(
        store_dir,
        records,
        meta,
        world.config,
        faults=faults,
        stats=stats,
        runs_index=runs_index,
    )


# -- store-side segmentation (shared with append) ---------------------------


def derive_op_lives(
    records: Mapping[ASN, AsnRecord],
    meta: StoreMeta,
) -> Dict[ASN, List[BgpLifetime]]:
    """Re-segment every record's activity sets into operational lives.

    Mirrors :func:`repro.lifetimes.bgp.build_bgp_lifetimes` exactly
    (including dropping ASNs with no active days at this ``min_peers``)
    so append-time re-segmentation matches the full pipeline.
    """
    out: Dict[ASN, List[BgpLifetime]] = {}
    for asn, record in records.items():
        activity = OperationalActivity(
            asn=asn, observed=record.observed, single_peer=record.single
        )
        days = activity.active_days(min_peers=meta.min_peers)
        if not days:
            continue
        out[asn] = lifetimes_from_activity(
            asn, days, timeout=meta.timeout, end_day=meta.end
        )
    return out


def config_from_fingerprint(doc: Any) -> Any:
    """Rebuild a :class:`WorldConfig` from its manifest fingerprint.

    The fingerprint is JSON (tuples flattened to lists; the strict
    ``from_dict`` coerces them back).  Unknown keys are a hard error —
    a manifest written by a different code version must not silently
    re-simulate a *different* world.  Used by ``serve-append`` to
    re-simulate the store's exact world.
    """
    from ..simulation.config import UnknownConfigKeyError, WorldConfig

    if not isinstance(doc, Mapping) or doc.get("__class__") != "WorldConfig":
        raise ServeStoreError("manifest config is not a WorldConfig fingerprint")
    try:
        config = WorldConfig.from_dict(doc)
    except UnknownConfigKeyError as exc:
        raise ServeStoreError(f"manifest config is not reconstructible: {exc}")
    if cache_key(config=config) != cache_key(config=doc):
        raise ServeStoreError("reconstructed config does not match fingerprint")
    return config
