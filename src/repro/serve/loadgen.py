"""Deterministic load generator for the serve HTTP layer.

Builds a reproducible query plan — zipf-skewed ASN popularity over the
store's universe, mixed across the four query shapes — and replays it
against a running server from asyncio client workers holding
keep-alive connections.  The report carries the latency distribution
(p50/p99 in microseconds) and sustained throughput, which is what the
perf gate pins.

The plan is a pure function of ``(asns, meta, count, seed, skew)``:
no wall clock, no global RNG — two runs against byte-identical stores
issue byte-identical request streams.

:func:`run_load_checked` turns a load run into an end-to-end telemetry
consistency test: it scrapes ``/metrics`` before and after the run,
parses both expositions, and cross-checks the server's account of the
run (per-route request counters, bucketed latency quantiles) against
what the client itself observed.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..asn.numbers import ASN
from ..runtime.observability import OVERFLOW_BUCKET, bucket_index, quantile_from_buckets
from ..timeline.dates import to_iso
from .store import ServeStoreError, StoreMeta
from .telemetry import le_label, parse_exposition

__all__ = [
    "QueryPlan",
    "LoadReport",
    "plan_queries",
    "run_load",
    "run_load_checked",
    "run_load_sync",
]

#: Default query mix: the point lookup dominates (it is what a
#: lifetimes service exists for), with taxonomy, as-of and range
#: queries keeping the other code paths warm.
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("lives", 0.60),
    ("taxonomy", 0.15),
    ("as_of", 0.15),
    ("range", 0.10),
)

DEFAULT_SKEW = 1.1
DEFAULT_CONCURRENCY = 16

#: Query-miss dial: one in this many point lookups targets an ASN just
#: past the universe, exercising the 404 path.
MISS_EVERY = 50


@dataclass(frozen=True)
class QueryPlan:
    """A reproducible request stream (paths only; all GETs)."""

    paths: Tuple[str, ...]
    seed: int
    skew: float

    def __len__(self) -> int:
        return len(self.paths)


@dataclass
class LoadReport:
    """What one load run measured."""

    queries: int
    errors: int
    seconds: float
    qps: float
    p50_us: float
    p99_us: float
    concurrency: int
    min_us: float = 0.0

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "queries": self.queries,
            "errors": self.errors,
            "seconds": round(self.seconds, 6),
            "qps": round(self.qps, 2),
            "p50_us": round(self.p50_us, 1),
            "p99_us": round(self.p99_us, 1),
            "min_us": round(self.min_us, 1),
            "concurrency": self.concurrency,
        }


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def plan_queries(
    asns: Sequence[ASN],
    meta: StoreMeta,
    count: int,
    *,
    seed: int = 0,
    skew: float = DEFAULT_SKEW,
    mix: Sequence[Tuple[str, float]] = DEFAULT_MIX,
) -> QueryPlan:
    """A ``count``-query plan over the store's ASN universe.

    ASN popularity is zipf-like: the universe is shuffled once (so the
    hot set is not simply the lowest ASNs), then ASN at popularity
    rank ``r`` is drawn with weight ``1 / r**skew``.
    """
    if not asns:
        raise ServeStoreError("cannot plan load against an empty store")
    rng = random.Random(seed)
    ranked = list(asns)
    rng.shuffle(ranked)
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(ranked))]
    kinds = [kind for kind, _w in mix]
    kind_weights = [w for _kind, w in mix]
    max_asn = max(asns)
    span_days = max(1, meta.end - meta.start)

    chosen_asns = rng.choices(ranked, weights=weights, k=count)
    chosen_kinds = rng.choices(kinds, weights=kind_weights, k=count)
    paths: List[str] = []
    for i, (asn, kind) in enumerate(zip(chosen_asns, chosen_kinds)):
        if kind == "lives":
            if i % MISS_EVERY == MISS_EVERY - 1:
                asn = max_asn + 1 + rng.randrange(1000)
            paths.append(f"/asn/{asn}/lives")
        elif kind == "taxonomy":
            paths.append(f"/asn/{asn}/taxonomy")
        elif kind == "as_of":
            day = meta.start + rng.randrange(span_days + 1)
            paths.append(f"/asn/{asn}/as-of/{to_iso(day)}")
        else:
            width = rng.randrange(1, 2000)
            paths.append(f"/range/{asn}-{asn + width}?limit=100")
    return QueryPlan(paths=tuple(paths), seed=seed, skew=skew)


async def _worker(
    host: str,
    port: int,
    paths: Sequence[str],
    latencies: List[float],
) -> int:
    """Replay ``paths`` over one keep-alive connection; returns errors."""
    errors = 0
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for path in paths:
            t0 = perf_counter()
            writer.write(
                f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("latin-1")
            )
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.split()
            status = int(parts[1]) if len(parts) >= 2 else 0
            length = 0
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _sep, value = header.partition(b":")
                if name.strip().lower() == b"content-length":
                    length = int(value.strip())
            if length:
                await reader.readexactly(length)
            latencies.append((perf_counter() - t0) * 1e6)
            # 404s are planned (the miss dial); anything else >= 400 is not.
            if status != 200 and status != 404:
                errors += 1
    except (ConnectionError, asyncio.IncompleteReadError, ValueError):
        errors += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
    return errors


async def run_load(
    host: str,
    port: int,
    plan: QueryPlan,
    *,
    concurrency: int = DEFAULT_CONCURRENCY,
) -> LoadReport:
    """Replay a plan with ``concurrency`` keep-alive connections."""
    concurrency = max(1, min(concurrency, len(plan.paths) or 1))
    latencies: List[float] = []
    slices = [plan.paths[i::concurrency] for i in range(concurrency)]
    t0 = perf_counter()
    errors = sum(
        await asyncio.gather(
            *(_worker(host, port, chunk, latencies) for chunk in slices if chunk)
        )
    )
    seconds = perf_counter() - t0
    latencies.sort()
    done = len(latencies)
    return LoadReport(
        queries=done,
        errors=errors,
        seconds=seconds,
        qps=done / seconds if seconds > 0 else 0.0,
        p50_us=_percentile(latencies, 0.50),
        p99_us=_percentile(latencies, 0.99),
        concurrency=concurrency,
        min_us=latencies[0] if latencies else 0.0,
    )


async def _fetch(host: str, port: int, path: str) -> Tuple[int, bytes]:
    """One ``Connection: close`` GET → (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.split()
        status = int(parts[1]) if len(parts) >= 2 else 0
        length: Optional[int] = None
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = header.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value.strip())
        body = (
            await reader.readexactly(length)
            if length is not None
            else await reader.read()
        )
        return status, body
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


def _data_route(labels: Dict[str, str]) -> bool:
    """Is this sample from a data route the plan can have exercised?

    The scrapes themselves land under ``/metrics``; restricting the
    cross-check to ``/asn/*`` / ``/range/*`` routes keeps the counter
    equality exact even though observing the server perturbs it.
    """
    route = labels.get("route", "")
    return route.startswith("/asn") or route.startswith("/range")


_REQUESTS_TOTAL = "repro_serve_http_requests_total"
_REQUEST_US_BUCKET = "repro_serve_http_request_us_bucket"

_LE_TO_INDEX = {le_label(i): i for i in range(OVERFLOW_BUCKET + 1)}


def _data_requests(samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]) -> int:
    """Total data-route requests a parsed exposition reports."""
    total = 0
    for (name, label_items), value in samples.items():
        if name == _REQUESTS_TOTAL and _data_route(dict(label_items)):
            total += int(value)
    return total


def _data_buckets(
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float],
) -> List[int]:
    """Data-route ``request_us`` histograms folded to per-bucket counts."""
    cumulative = [0] * (OVERFLOW_BUCKET + 1)
    for (name, label_items), value in samples.items():
        if name != _REQUEST_US_BUCKET:
            continue
        labels = dict(label_items)
        if not _data_route(labels):
            continue
        index = _LE_TO_INDEX.get(labels.get("le", ""))
        if index is None:  # pragma: no cover - foreign bucket grid
            raise ValueError(f"unknown le bucket {labels.get('le')!r}")
        cumulative[index] += int(value)
    buckets = [0] * (OVERFLOW_BUCKET + 1)
    previous = 0
    for i, cum in enumerate(cumulative):
        buckets[i] = cum - previous
        previous = cum
    return buckets


async def run_load_checked(
    host: str,
    port: int,
    plan: QueryPlan,
    *,
    concurrency: int = DEFAULT_CONCURRENCY,
    scrape_retries: int = 20,
    scrape_delay: float = 0.05,
) -> Tuple[LoadReport, Dict[str, Any]]:
    """:func:`run_load` bracketed by ``/metrics`` scrapes.

    Returns ``(report, consistency)`` where ``consistency`` records the
    server's account of the run against the client's:

    * ``requests_match`` — the delta of the server's data-route request
      counters exactly equals the number of queries sent.
    * ``quantiles_agree`` — server-side p50/p99 (derived from the
      ``request_us`` bucket deltas) land within one bucket of the
      client's nearest-rank percentiles.  The two planes observe the
      same requests through different windows: client latency is the
      server's request window plus a near-constant transport floor
      (one loopback round trip + two event-loop wakeups), so the
      checker first estimates that floor as ``min(client) −
      min(server)`` over the run and aligns the client's percentiles
      onto the server's plane before bucketizing.  Meaningful at low
      concurrency only: with many in-flight requests the client's
      numbers include event-loop queueing the server never sees, so
      callers asserting agreement should drive ``concurrency=1``.

    The final scrape is retried briefly: a worker's last response can
    be read by the client a scheduling slot before the server coroutine
    records it, so the counters are eventually — not instantaneously —
    consistent.
    """
    _status, before_body = await _fetch(host, port, "/metrics")
    before = parse_exposition(before_body.decode("utf-8"))
    report = await run_load(host, port, plan, concurrency=concurrency)

    sent = len(plan.paths)
    base_requests = _data_requests(before)
    retries = 0
    while True:
        _status, after_body = await _fetch(host, port, "/metrics")
        after = parse_exposition(after_body.decode("utf-8"))
        server_requests = _data_requests(after) - base_requests
        if server_requests >= sent or retries >= scrape_retries:
            break
        retries += 1
        await asyncio.sleep(scrape_delay)

    before_buckets = _data_buckets(before)
    after_buckets = _data_buckets(after)
    deltas = [a - b for a, b in zip(after_buckets, before_buckets)]
    count = sum(deltas)
    server_q: Dict[str, float] = {}
    offsets: Dict[str, Optional[int]] = {"p50": None, "p99": None}
    floor_us = 0.0
    if count > 0:
        # q=0 lands in the lowest non-empty bucket: the server's
        # fastest request, as reconstructible from the exposition.
        server_min = quantile_from_buckets(deltas, 0.0, count=count)
        floor_us = max(0.0, report.min_us - server_min)
        for label, q, client_value in (
            ("p50", 0.50, report.p50_us),
            ("p99", 0.99, report.p99_us),
        ):
            value = quantile_from_buckets(deltas, q, count=count)
            server_q[f"{label}_us"] = round(value, 1)
            aligned = max(client_value - floor_us, server_min)
            offsets[label] = abs(bucket_index(value) - bucket_index(aligned))
    quantiles_agree = all(
        offset is not None and offset <= 1 for offset in offsets.values()
    )
    consistency: Dict[str, Any] = {
        "sent": sent,
        "server_requests": server_requests,
        "requests_match": server_requests == sent,
        "client": {"p50_us": round(report.p50_us, 1), "p99_us": round(report.p99_us, 1)},
        "server": server_q,
        "floor_us": round(floor_us, 1),
        "bucket_offsets": offsets,
        "quantiles_agree": quantiles_agree,
        "scrape_retries": retries,
    }
    return report, consistency


def run_load_sync(
    host: str,
    port: int,
    plan: QueryPlan,
    *,
    concurrency: int = DEFAULT_CONCURRENCY,
) -> LoadReport:
    """:func:`run_load` for synchronous callers (CLI, benchmarks)."""
    return asyncio.run(run_load(host, port, plan, concurrency=concurrency))
