"""Deterministic load generator for the serve HTTP layer.

Builds a reproducible query plan — zipf-skewed ASN popularity over the
store's universe, mixed across the four query shapes — and replays it
against a running server from asyncio client workers holding
keep-alive connections.  The report carries the latency distribution
(p50/p99 in microseconds) and sustained throughput, which is what the
perf gate pins.

The plan is a pure function of ``(asns, meta, count, seed, skew)``:
no wall clock, no global RNG — two runs against byte-identical stores
issue byte-identical request streams.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, List, Sequence, Tuple

from ..asn.numbers import ASN
from ..timeline.dates import to_iso
from .store import ServeStoreError, StoreMeta

__all__ = ["QueryPlan", "LoadReport", "plan_queries", "run_load", "run_load_sync"]

#: Default query mix: the point lookup dominates (it is what a
#: lifetimes service exists for), with taxonomy, as-of and range
#: queries keeping the other code paths warm.
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("lives", 0.60),
    ("taxonomy", 0.15),
    ("as_of", 0.15),
    ("range", 0.10),
)

DEFAULT_SKEW = 1.1
DEFAULT_CONCURRENCY = 16

#: Query-miss dial: one in this many point lookups targets an ASN just
#: past the universe, exercising the 404 path.
MISS_EVERY = 50


@dataclass(frozen=True)
class QueryPlan:
    """A reproducible request stream (paths only; all GETs)."""

    paths: Tuple[str, ...]
    seed: int
    skew: float

    def __len__(self) -> int:
        return len(self.paths)


@dataclass
class LoadReport:
    """What one load run measured."""

    queries: int
    errors: int
    seconds: float
    qps: float
    p50_us: float
    p99_us: float
    concurrency: int

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "queries": self.queries,
            "errors": self.errors,
            "seconds": round(self.seconds, 6),
            "qps": round(self.qps, 2),
            "p50_us": round(self.p50_us, 1),
            "p99_us": round(self.p99_us, 1),
            "concurrency": self.concurrency,
        }


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def plan_queries(
    asns: Sequence[ASN],
    meta: StoreMeta,
    count: int,
    *,
    seed: int = 0,
    skew: float = DEFAULT_SKEW,
    mix: Sequence[Tuple[str, float]] = DEFAULT_MIX,
) -> QueryPlan:
    """A ``count``-query plan over the store's ASN universe.

    ASN popularity is zipf-like: the universe is shuffled once (so the
    hot set is not simply the lowest ASNs), then ASN at popularity
    rank ``r`` is drawn with weight ``1 / r**skew``.
    """
    if not asns:
        raise ServeStoreError("cannot plan load against an empty store")
    rng = random.Random(seed)
    ranked = list(asns)
    rng.shuffle(ranked)
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(ranked))]
    kinds = [kind for kind, _w in mix]
    kind_weights = [w for _kind, w in mix]
    max_asn = max(asns)
    span_days = max(1, meta.end - meta.start)

    chosen_asns = rng.choices(ranked, weights=weights, k=count)
    chosen_kinds = rng.choices(kinds, weights=kind_weights, k=count)
    paths: List[str] = []
    for i, (asn, kind) in enumerate(zip(chosen_asns, chosen_kinds)):
        if kind == "lives":
            if i % MISS_EVERY == MISS_EVERY - 1:
                asn = max_asn + 1 + rng.randrange(1000)
            paths.append(f"/asn/{asn}/lives")
        elif kind == "taxonomy":
            paths.append(f"/asn/{asn}/taxonomy")
        elif kind == "as_of":
            day = meta.start + rng.randrange(span_days + 1)
            paths.append(f"/asn/{asn}/as-of/{to_iso(day)}")
        else:
            width = rng.randrange(1, 2000)
            paths.append(f"/range/{asn}-{asn + width}?limit=100")
    return QueryPlan(paths=tuple(paths), seed=seed, skew=skew)


async def _worker(
    host: str,
    port: int,
    paths: Sequence[str],
    latencies: List[float],
) -> int:
    """Replay ``paths`` over one keep-alive connection; returns errors."""
    errors = 0
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for path in paths:
            t0 = perf_counter()
            writer.write(
                f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("latin-1")
            )
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.split()
            status = int(parts[1]) if len(parts) >= 2 else 0
            length = 0
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _sep, value = header.partition(b":")
                if name.strip().lower() == b"content-length":
                    length = int(value.strip())
            if length:
                await reader.readexactly(length)
            latencies.append((perf_counter() - t0) * 1e6)
            # 404s are planned (the miss dial); anything else >= 400 is not.
            if status != 200 and status != 404:
                errors += 1
    except (ConnectionError, asyncio.IncompleteReadError, ValueError):
        errors += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
    return errors


async def run_load(
    host: str,
    port: int,
    plan: QueryPlan,
    *,
    concurrency: int = DEFAULT_CONCURRENCY,
) -> LoadReport:
    """Replay a plan with ``concurrency`` keep-alive connections."""
    concurrency = max(1, min(concurrency, len(plan.paths) or 1))
    latencies: List[float] = []
    slices = [plan.paths[i::concurrency] for i in range(concurrency)]
    t0 = perf_counter()
    errors = sum(
        await asyncio.gather(
            *(_worker(host, port, chunk, latencies) for chunk in slices if chunk)
        )
    )
    seconds = perf_counter() - t0
    latencies.sort()
    done = len(latencies)
    return LoadReport(
        queries=done,
        errors=errors,
        seconds=seconds,
        qps=done / seconds if seconds > 0 else 0.0,
        p50_us=_percentile(latencies, 0.50),
        p99_us=_percentile(latencies, 0.99),
        concurrency=concurrency,
    )


def run_load_sync(
    host: str,
    port: int,
    plan: QueryPlan,
    *,
    concurrency: int = DEFAULT_CONCURRENCY,
) -> LoadReport:
    """:func:`run_load` for synchronous callers (CLI, benchmarks)."""
    return asyncio.run(run_load(host, port, plan, concurrency=concurrency))
