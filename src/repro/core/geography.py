"""Country-level infrastructure expansion (Appendix A).

Appendix A breaks the administrative lens down by country: Brazil's
climb to >70% of LACNIC, India overtaking Australia inside APNIC,
Russia leading RIPE NCC — "insight into the expansion of Internet
infrastructure in different countries and regions of the world over
the years".  This module computes those per-country series and growth
rankings from a lifetime dataset.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..asn.numbers import ASN
from ..lifetimes.records import AdminLifetime
from ..timeline.dates import Day
from .trends import DailySeries, _accumulate

__all__ = [
    "alive_counts_by_country",
    "country_growth",
    "fastest_growing_countries",
]


def alive_counts_by_country(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    start: Day,
    end: Day,
    *,
    registry: Optional[str] = None,
    min_lives: int = 1,
) -> Dict[str, DailySeries]:
    """Per-country daily alive allocation counts.

    ``registry`` restricts to one RIR's delegations (the Appendix-A
    regional breakdowns); countries with fewer than ``min_lives``
    lifetimes are dropped to keep the long tail out of the result.
    """
    buckets: Dict[str, List[Tuple[Day, Day]]] = {}
    for per_asn in admin_lives.values():
        for life in per_asn:
            if not life.cc:
                continue
            if registry is not None and life.registry != registry:
                continue
            buckets.setdefault(life.cc, []).append((life.start, life.end))
    return {
        cc: DailySeries(start, _accumulate(intervals, start, end))
        for cc, intervals in sorted(buckets.items())
        if len(intervals) >= min_lives
    }


def country_growth(
    series: Mapping[str, DailySeries], day_a: Day, day_b: Day
) -> Dict[str, Tuple[int, int, float]]:
    """(count at a, count at b, multiplicative growth) per country.

    Countries absent (zero) at ``day_a`` report infinite growth as the
    raw delta with factor ``float('inf')`` — new entrants, which the
    Appendix-A narrative calls out (India "not even in the top-5" in
    2010).
    """
    out: Dict[str, Tuple[int, int, float]] = {}
    for cc, s in series.items():
        a, b = s.at(day_a), s.at(day_b)
        factor = b / a if a else float("inf") if b else 1.0
        out[cc] = (a, b, factor)
    return out


def fastest_growing_countries(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    start: Day,
    end: Day,
    *,
    registry: Optional[str] = None,
    top: int = 5,
    min_final: int = 10,
) -> List[Tuple[str, int, int, float]]:
    """Top countries by growth factor over the window.

    ``min_final`` filters out micro-populations whose factors are
    noise.  Rows are (country, count at start, count at end, factor),
    factor-descending with the absolute gain as tie-break.
    """
    series = alive_counts_by_country(
        admin_lives, start, end, registry=registry
    )
    growth = country_growth(series, start, end)
    rows = [
        (cc, a, b, factor)
        for cc, (a, b, factor) in growth.items()
        if b >= min_final
    ]
    rows.sort(key=lambda r: (-(r[3] if r[3] != float("inf") else 1e18), -(r[2] - r[1])))
    return rows[:top]
