"""§6.4 — classifying never-allocated ASNs seen in BGP.

Manual inspection in the paper attributes most of these to:

* **failed AS-path prepending** (76% of the identified
  misconfigurations): the origin is the first hop's digits repeated,
  e.g. AS3202632026 next to first hop AS32026;
* **one-digit typos** (24%): the origin differs from a legitimate MOAS
  partner by a single digit, e.g. AS419333 vs AS41933;
* **internal numbering leaks**: very large valid ASNs (more digits than
  any allocated one) announcing prefixes covered by a real operator's
  aggregate, like AS290012147 inside Verizon's /12.

The classifier consumes *path evidence* — for each suspect origin, the
observed first hop, the announced prefixes, and any MOAS partners —
which the integration layer extracts from sanitized BGP elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from ..asn.numbers import ASN, digit_count, looks_like_prepend_typo, one_digit_apart
from ..bgp.messages import BgpElement
from ..net.prefix import Prefix

__all__ = [
    "PathEvidence",
    "MisconfigClass",
    "classify_suspect",
    "classify_all",
    "collect_path_evidence",
]


@dataclass(frozen=True)
class PathEvidence:
    """Observed routing facts about one suspect origin ASN."""

    origin: ASN
    first_hops: Tuple[ASN, ...]
    prefixes: Tuple[Prefix, ...]
    moas_partners: Tuple[ASN, ...] = ()
    covering_origins: Tuple[ASN, ...] = ()


class MisconfigClass:
    """Classification outcomes."""

    PREPEND_TYPO = "fat_finger_prepend"
    DIGIT_TYPO = "fat_finger_digit"
    INTERNAL_LEAK = "internal_leak"
    UNEXPLAINED = "unexplained"


def classify_suspect(
    evidence: PathEvidence, *, max_allocated_digits: int = 6
) -> str:
    """Classify one never-allocated origin from its path evidence.

    Order matters and mirrors the paper's reasoning: a repeated-first-
    hop origin is a failed prepend regardless of size; then an origin
    one digit away from a MOAS partner *or from an ASN in its own path*
    ("an origin ASN similar to an ASN in the AS Path ... usually the
    first hop", §6.4) marks a digit typo; then an origin with more
    digits than any allocated ASN, announcing space covered by a
    legitimate origin that also appears upstream, is an internal leak.
    """
    for hop in evidence.first_hops:
        if looks_like_prepend_typo(evidence.origin, hop):
            return MisconfigClass.PREPEND_TYPO
    for partner in evidence.moas_partners + evidence.first_hops:
        if one_digit_apart(evidence.origin, partner):
            return MisconfigClass.DIGIT_TYPO
    if digit_count(evidence.origin) > max_allocated_digits and (
        evidence.covering_origins
    ):
        return MisconfigClass.INTERNAL_LEAK
    return MisconfigClass.UNEXPLAINED


def classify_all(
    evidence: Iterable[PathEvidence], *, max_allocated_digits: int = 6
) -> Dict[str, List[ASN]]:
    """Classify a population of suspects, bucketed by outcome."""
    out: Dict[str, List[ASN]] = {
        MisconfigClass.PREPEND_TYPO: [],
        MisconfigClass.DIGIT_TYPO: [],
        MisconfigClass.INTERNAL_LEAK: [],
        MisconfigClass.UNEXPLAINED: [],
    }
    for item in evidence:
        out[classify_suspect(item, max_allocated_digits=max_allocated_digits)].append(
            item.origin
        )
    for bucket in out.values():
        bucket.sort()
    return out


def collect_path_evidence(
    elements: Iterable[BgpElement],
    suspects: Set[ASN],
) -> Dict[ASN, PathEvidence]:
    """Extract :class:`PathEvidence` for suspect origins from a
    (sanitized) element stream.

    First hops are read off paths originated by the suspect; MOAS
    partners are other origins announcing the *same* prefix; covering
    origins are origins of strictly less specific prefixes that contain
    a suspect prefix (the Verizon-/12 pattern).
    """
    first_hops: Dict[ASN, Set[ASN]] = {s: set() for s in suspects}
    prefixes: Dict[ASN, Set[Prefix]] = {s: set() for s in suspects}
    origins_by_prefix: Dict[Prefix, Set[ASN]] = {}
    all_announcements: List[Tuple[Prefix, ASN]] = []
    for element in elements:
        origin = element.origin
        if origin is None:
            continue
        origins_by_prefix.setdefault(element.prefix, set()).add(origin)
        all_announcements.append((element.prefix, origin))
        if origin in suspects:
            prefixes[origin].add(element.prefix)
            if len(element.as_path) >= 2:
                hop = element.as_path[-2]
                if hop != origin:
                    first_hops[origin].add(hop)

    out: Dict[ASN, PathEvidence] = {}
    unique_announcements = set(all_announcements)
    for suspect in suspects:
        moas: Set[ASN] = set()
        covering: Set[ASN] = set()
        for prefix in prefixes[suspect]:
            moas |= origins_by_prefix.get(prefix, set()) - {suspect}
            for other_prefix, other_origin in unique_announcements:
                if other_origin == suspect:
                    continue
                if other_prefix.strictly_contains(prefix):
                    covering.add(other_origin)
        out[suspect] = PathEvidence(
            origin=suspect,
            first_hops=tuple(sorted(first_hops[suspect])),
            prefixes=tuple(sorted(prefixes[suspect])),
            moas_partners=tuple(sorted(moas)),
            covering_origins=tuple(sorted(covering)),
        )
    return out
