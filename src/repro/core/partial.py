"""§6.2 — partial overlaps: dangling announcements and late allocations.

Partial-overlap administrative lives split into two benign mechanisms:

* **dangling announcements** — the operational life outlives the
  deallocation (64% of the category in the paper), typically small
  networks whose providers never cleaned their router configs: 95% of
  the dangling ASes have an empty customer cone;
* **late allocations** — BGP activity starts before the ASN appears
  allocated; usually a few days of publication lag, and for 631 ASNs
  even before the registration date itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..asn.numbers import ASN
from ..bgp.topology import AsTopology
from ..lifetimes.records import AdminLifetime, BgpLifetime

__all__ = ["PartialOverlapStats", "analyze_partial_overlaps"]


@dataclass
class PartialOverlapStats:
    """Aggregates of the §6.2 analysis."""

    partial_admin_lives: int = 0
    dangling_lives: int = 0
    dangling_asns: List[ASN] = field(default_factory=list)
    dangling_tail_days: List[int] = field(default_factory=list)
    early_start_lives: int = 0
    early_start_asns: List[ASN] = field(default_factory=list)
    early_start_days: List[int] = field(default_factory=list)
    before_reg_date_asns: List[ASN] = field(default_factory=list)
    dangling_cone_sizes: Dict[ASN, int] = field(default_factory=dict)

    @property
    def dangling_share(self) -> float:
        """Share of partial-overlap lives that are dangling (paper: 64%)."""
        if not self.partial_admin_lives:
            return 0.0
        return self.dangling_lives / self.partial_admin_lives

    def stub_share_of_dangling(self) -> float:
        """Fraction of dangling ASNs with no customers (paper: 95%)."""
        if not self.dangling_cone_sizes:
            return 0.0
        stubs = sum(1 for size in self.dangling_cone_sizes.values() if size <= 1)
        return stubs / len(self.dangling_cone_sizes)


def analyze_partial_overlaps(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    op_lives: Mapping[ASN, Sequence[BgpLifetime]],
    *,
    topology: Optional[AsTopology] = None,
) -> PartialOverlapStats:
    """Classify every partial-overlap administrative life.

    A life can exhibit both mechanisms at once (activity starting early
    *and* outliving the deallocation); both counters increment, as the
    paper's per-mechanism counts also overlap.
    """
    stats = PartialOverlapStats()
    for asn, admins in admin_lives.items():
        ops = op_lives.get(asn, ())
        ordered = sorted(admins, key=lambda a: a.start)
        for index, admin in enumerate(ordered):
            previous = ordered[index - 1] if index else None
            overlapping = [op for op in ops if op.interval.overlaps(admin.interval)]
            if not overlapping:
                continue
            sticking_out = [
                op
                for op in overlapping
                if not admin.interval.contains_interval(op.interval)
            ]
            if not sticking_out:
                continue
            stats.partial_admin_lives += 1
            dangling = [op for op in sticking_out if op.end > admin.end]
            early = [op for op in sticking_out if op.start < admin.start]
            if dangling:
                stats.dangling_lives += 1
                stats.dangling_asns.append(asn)
                stats.dangling_tail_days.append(
                    max(op.end for op in dangling) - admin.end
                )
                if topology is not None and asn in topology:
                    stats.dangling_cone_sizes[asn] = topology.cone_size(asn)
            # activity reaching back INTO the previous holder's lifetime
            # is that holder's dangling tail (merged across the
            # re-allocation by the inactivity timeout), not an early
            # start of this life
            genuine_early = [
                op
                for op in early
                if previous is None or op.start > previous.end
            ]
            if genuine_early:
                stats.early_start_lives += 1
                stats.early_start_asns.append(asn)
                first = min(op.start for op in genuine_early)
                stats.early_start_days.append(admin.start - first)
                if first < admin.reg_date:
                    stats.before_reg_date_asns.append(asn)
    return stats
