"""§6.1.2 — detection of dormant-ASN squatting.

An attacker originating prefixes from an allocated-but-dormant ASN
leaves a distinctive joint-lens signature: a long period of allocated
inactivity (the paper uses >1000 days) followed by an operational life
that is tiny relative to the administrative life (<=5% "relative
duration").  The detector flags exactly that; the simulation's anomaly
ground truth lets the benchmark report recall/precision, which the
paper could not (no broad hijack ground truth exists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set

from ..asn.numbers import ASN
from ..bgp.anomalies import AnomalyEvent, SQUAT_DORMANT
from ..lifetimes.records import AdminLifetime, BgpLifetime

__all__ = [
    "DEFAULT_DORMANCY_DAYS",
    "DEFAULT_RELATIVE_DURATION",
    "SquattingCandidate",
    "detect_dormant_squatting",
    "score_against_truth",
]

#: Inactivity (while allocated) required before an awakening is
#: suspicious (paper: 1000 days).
DEFAULT_DORMANCY_DAYS = 1000
#: Maximum post-dormancy operational life relative to the admin life
#: (paper: 5%).
DEFAULT_RELATIVE_DURATION = 0.05


@dataclass(frozen=True)
class SquattingCandidate:
    """One operational life flagged as possible dormant-ASN squatting."""

    asn: ASN
    op_start: int
    op_end: int
    admin_start: int
    admin_end: int
    dormancy_days: int
    relative_duration: float

    @property
    def op_duration(self) -> int:
        return self.op_end - self.op_start + 1


def detect_dormant_squatting(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    op_lives: Mapping[ASN, Sequence[BgpLifetime]],
    *,
    dormancy_days: int = DEFAULT_DORMANCY_DAYS,
    relative_duration: float = DEFAULT_RELATIVE_DURATION,
) -> List[SquattingCandidate]:
    """Flag operational lives matching the paper's two-parameter filter.

    For every operational life contained in an administrative life, the
    preceding inactivity is measured from the administrative start or
    from the end of the previous operational life, whichever is later;
    lives preceded by more than ``dormancy_days`` of allocated silence
    and shorter than ``relative_duration`` of their administrative life
    are flagged.
    """
    candidates: List[SquattingCandidate] = []
    for asn, admins in admin_lives.items():
        ops = sorted(op_lives.get(asn, ()), key=lambda l: l.start)
        for admin in admins:
            contained = [
                op for op in ops if admin.interval.contains_interval(op.interval)
            ]
            previous_end: Optional[int] = None
            for op in contained:
                since = admin.start if previous_end is None else previous_end + 1
                dormancy = op.start - since
                previous_end = op.end
                if dormancy < dormancy_days:
                    continue
                ratio = op.duration / admin.duration
                if ratio > relative_duration:
                    continue
                candidates.append(
                    SquattingCandidate(
                        asn=asn,
                        op_start=op.start,
                        op_end=op.end,
                        admin_start=admin.start,
                        admin_end=admin.end,
                        dormancy_days=dormancy,
                        relative_duration=ratio,
                    )
                )
    candidates.sort(key=lambda c: (c.asn, c.op_start))
    return candidates


def score_against_truth(
    candidates: Sequence[SquattingCandidate],
    truth: Sequence[AnomalyEvent],
    *,
    kinds: Set[str] = frozenset({SQUAT_DORMANT}),
) -> Dict[str, float]:
    """Recall/precision of the detector against injected ground truth.

    A truth event is recovered when a candidate for the squatted origin
    ASN overlaps the event's interval.  Precision counts candidates
    explained by *some* truth event; the remainder are the legitimate
    irregular behaviors (traffic engineering, event networks) the paper
    warns are hard to disambiguate.
    """
    relevant = [event for event in truth if event.kind in kinds]
    recovered = 0
    for event in relevant:
        if any(
            c.asn == event.origin
            and c.op_start <= event.interval.end
            and event.interval.start <= c.op_end
            for c in candidates
        ):
            recovered += 1
    explained = 0
    for candidate in candidates:
        if any(
            event.origin == candidate.asn
            and candidate.op_start <= event.interval.end
            and event.interval.start <= candidate.op_end
            for event in relevant
        ):
            explained += 1
    return {
        "truth_events": float(len(relevant)),
        "candidates": float(len(candidates)),
        "recall": recovered / len(relevant) if relevant else 1.0,
        "precision": explained / len(candidates) if candidates else 1.0,
    }
