"""Origination vs. transit roles of ASNs in BGP.

The paper's future work (§9) plans "distinguishing between origination
and transit BGP activity of an ASN to differentiate the role(s) an ASN
has at different times of its BGP lifetime".  This module implements
that distinction over message-level element streams: per ASN, the days
it *originated* prefixes versus the days it only appeared as a
*transit* hop, and a role classification over any window.

Role changes are themselves a signal: a stub suddenly appearing as
transit (or an ASN whose activity is transit-only while its allocation
says end-site) is the kind of inconsistency the joint lens surfaces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from ..asn.numbers import ASN
from ..bgp.messages import WITHDRAW, BgpElement
from ..timeline.dates import Day
from ..timeline.intervals import IntervalSet

__all__ = ["Role", "RoleActivity", "collect_role_activity", "classify_role"]


class Role(enum.Enum):
    """Dominant role of an ASN over a window."""

    ORIGIN_ONLY = "origin_only"
    TRANSIT_ONLY = "transit_only"
    MIXED = "mixed"
    SILENT = "silent"


@dataclass
class RoleActivity:
    """Per-ASN day sets split by role."""

    asn: ASN
    origin_days: IntervalSet = field(default_factory=IntervalSet)
    transit_days: IntervalSet = field(default_factory=IntervalSet)

    @property
    def all_days(self) -> IntervalSet:
        return self.origin_days.union(self.transit_days)

    def transit_share(self) -> float:
        """Fraction of active days with transit appearances."""
        total = self.all_days.total_days
        if not total:
            return 0.0
        return self.transit_days.total_days / total

    def role_over(self, start: Day, end: Day) -> Role:
        """Classify the ASN's role over an inclusive window."""
        origin = self.origin_days.clamp(start, end).total_days
        transit = self.transit_days.clamp(start, end).total_days
        if not origin and not transit:
            return Role.SILENT
        if origin and not transit:
            return Role.ORIGIN_ONLY
        if transit and not origin:
            return Role.TRANSIT_ONLY
        return Role.MIXED


def collect_role_activity(
    elements_by_day: Mapping[Day, Iterable[BgpElement]],
) -> Dict[ASN, RoleActivity]:
    """Split each ASN's daily visibility into origin vs. transit days.

    An ASN counts as *origin* on a day when it terminates at least one
    path, and as *transit* when it appears in any non-terminal path
    position that day (both can hold at once).
    """
    origin_days: Dict[ASN, List[Day]] = {}
    transit_days: Dict[ASN, List[Day]] = {}
    for day, elements in elements_by_day.items():
        day_origin: set = set()
        day_transit: set = set()
        for element in elements:
            if element.elem_type == WITHDRAW or not element.as_path:
                continue
            path = element.path_asns()
            day_origin.add(path[-1])
            day_transit.update(path[:-1])
        for asn in day_origin:
            origin_days.setdefault(asn, []).append(day)
        for asn in day_transit:
            transit_days.setdefault(asn, []).append(day)
    out: Dict[ASN, RoleActivity] = {}
    for asn in set(origin_days) | set(transit_days):
        out[asn] = RoleActivity(
            asn=asn,
            origin_days=IntervalSet.from_days(origin_days.get(asn, [])),
            transit_days=IntervalSet.from_days(transit_days.get(asn, [])),
        )
    return out


def classify_role(
    activity: Optional[RoleActivity], start: Day, end: Day
) -> Role:
    """Convenience wrapper tolerating missing activity."""
    if activity is None:
        return Role.SILENT
    return activity.role_over(start, end)


def role_census(
    activities: Mapping[ASN, RoleActivity], start: Day, end: Day
) -> Dict[Role, int]:
    """Count ASNs by role over a window."""
    out: Dict[Role, int] = {role: 0 for role in Role}
    for activity in activities.values():
        out[activity.role_over(start, end)] += 1
    return out
