"""Textual report over a full joint analysis.

Renders the paper's headline results — dataset sizes, Table 3, the §6
sub-analyses — as a single readable report.  Used by the command-line
interface and handy in notebooks.
"""

from __future__ import annotations

from typing import List, Optional

from ..restoration.report import RestorationReport
from .joint import JointAnalysis

__all__ = ["render_report"]


def _section(title: str) -> List[str]:
    return ["", title, "-" * len(title)]


def render_report(
    joint: JointAnalysis,
    *,
    restoration: Optional[RestorationReport] = None,
) -> str:
    """Render the full joint-analysis report as text."""
    lines: List[str] = ["Parallel lives of Autonomous Systems — analysis report",
                        "=" * 54]

    lines += _section("Datasets (§4)")
    lines.append(
        f"administrative lifetimes: {joint.total_admin_lifetimes()} "
        f"over {joint.total_admin_asns()} ASNs"
    )
    lines.append(
        f"operational lifetimes:    {joint.total_op_lifetimes()} "
        f"over {joint.total_op_asns()} ASNs"
    )

    if restoration is not None:
        lines += _section("Archive restoration (§3.1)")
        for step in restoration.steps:
            lines.append(f"{step.step}: {step.total()} repairs")

    lines += _section("Taxonomy (§6, Table 3)")
    admin_total = joint.total_admin_lifetimes() or 1
    for name, admin, op in joint.taxonomy.table3_rows():
        lines.append(
            f"{name:22s} admin {admin:7d} ({admin / admin_total:6.1%})   "
            f"op {op:7d}"
        )

    utilization = joint.utilization
    lines += _section("Utilization (§6.1.1, Fig. 7)")
    lines.append(
        f"usage > 75%: {utilization.share_with_usage_above(0.75):.1%}   "
        f"usage > 95%: {utilization.share_with_usage_above(0.95):.1%}   "
        f"usage < 30%: {utilization.utilization_cdf_at(0.30):.1%}"
    )
    shares = utilization.op_count_shares()
    lines.append(
        f"op lives per admin life: 1={shares['1']:.1%}  "
        f"2={shares['2']:.1%}  >2={shares['>2']:.1%}"
    )
    for registry, value in utilization.median_late_dealloc().items():
        lines.append(f"median deallocation lag [{registry}]: {value:.0f} days")

    candidates = joint.squatting_candidates
    lines += _section("Dormant-ASN squatting (§6.1.2)")
    lines.append(f"filter matches: {len(candidates)}")
    score = joint.squatting_score()
    if score["truth_events"]:
        lines.append(
            f"ground truth: {score['truth_events']:.0f} events, "
            f"recall {score['recall']:.0%}, precision {score['precision']:.0%}"
        )

    partial = joint.partial
    lines += _section("Partial overlaps (§6.2)")
    lines.append(
        f"partial lives: {partial.partial_admin_lives}  "
        f"dangling: {partial.dangling_lives} ({partial.dangling_share:.0%})  "
        f"early starts: {partial.early_start_lives}"
    )

    unused = joint.unused
    lines += _section("Unused administrative lives (§6.3)")
    lines.append(f"unused lives: {unused.unused_lives} ({unused.unused_share:.1%})")
    for cc, count, frac in unused.top_unused_countries(3):
        lines.append(f"  {cc}: {count} unused lives ({frac:.0%} of its allocations)")

    outside = joint.outside
    lines += _section("Operational lives outside delegation (§6.4)")
    lines.append(
        f"outside op lives: {outside.outside_op_lives}  "
        f"once-allocated ASNs: {len(outside.once_allocated_asns)}  "
        f"never-allocated ASNs: {len(outside.never_allocated_asns)}"
    )
    lines.append(
        f"never-allocated active >1d/>1mo/>1y: "
        f"{outside.never_allocated_active_longer_than(1)}/"
        f"{outside.never_allocated_active_longer_than(31)}/"
        f"{outside.never_allocated_active_longer_than(365)}"
    )
    return "\n".join(lines)
