"""Facade bundling the full joint analysis of §5-§6.

:class:`JointAnalysis` takes the two lifetime datasets (plus the
optional context each sub-analysis can exploit: the AS topology for
customer cones, the organization→ASNs sibling map, the anomaly ground
truth) and lazily computes every result the paper reports.  Examples
and benchmarks go through this single entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Mapping, Optional, Sequence

from ..asn.numbers import ASN
from ..bgp.anomalies import AnomalyEvent
from ..bgp.topology import AsTopology
from ..lifetimes.records import AdminLifetime, BgpLifetime
from ..timeline.dates import Day
from .partial import PartialOverlapStats, analyze_partial_overlaps
from .squatting import (
    SquattingCandidate,
    detect_dormant_squatting,
    score_against_truth,
)
from .taxonomy import Category, TaxonomyResult, classify
from .unallocated import OutsideDelegationStats, analyze_outside_delegation
from .unused import UnusedLivesStats, analyze_unused_lives
from .utilization import UtilizationStats, analyze_utilization

__all__ = ["JointAnalysis"]


@dataclass
class JointAnalysis:
    """One-stop joint analysis over a pair of lifetime datasets."""

    admin_lives: Mapping[ASN, Sequence[AdminLifetime]]
    op_lives: Mapping[ASN, Sequence[BgpLifetime]]
    end_day: Day
    topology: Optional[AsTopology] = None
    siblings: Optional[Mapping[str, Sequence[ASN]]] = None
    truth: Sequence[AnomalyEvent] = field(default_factory=tuple)

    @cached_property
    def taxonomy(self) -> TaxonomyResult:
        """Table 3 / Fig. 6 classification."""
        return classify(self.admin_lives, self.op_lives)

    @cached_property
    def utilization(self) -> UtilizationStats:
        """§6.1.1 utilization and delay statistics (Fig. 7)."""
        return analyze_utilization(self.admin_lives, self.op_lives)

    @cached_property
    def partial(self) -> PartialOverlapStats:
        """§6.2 dangling announcements and late allocations."""
        return analyze_partial_overlaps(
            self.admin_lives, self.op_lives, topology=self.topology
        )

    @cached_property
    def unused(self) -> UnusedLivesStats:
        """§6.3 allocated-but-unobserved analysis (Fig. 9)."""
        return analyze_unused_lives(
            self.admin_lives, self.op_lives, siblings=self.siblings
        )

    @cached_property
    def outside(self) -> OutsideDelegationStats:
        """§6.4 operational lives without allocation."""
        return analyze_outside_delegation(self.admin_lives, self.op_lives)

    @cached_property
    def squatting_candidates(self) -> List[SquattingCandidate]:
        """§6.1.2 dormant-squat detector output."""
        return detect_dormant_squatting(self.admin_lives, self.op_lives)

    def squatting_score(self) -> Dict[str, float]:
        """Detector recall/precision against the injected ground truth."""
        return score_against_truth(self.squatting_candidates, self.truth)

    # -- convenience counts --------------------------------------------------

    def total_admin_lifetimes(self) -> int:
        return sum(len(v) for v in self.admin_lives.values())

    def total_op_lifetimes(self) -> int:
        return sum(len(v) for v in self.op_lives.values())

    def total_admin_asns(self) -> int:
        return len(self.admin_lives)

    def total_op_asns(self) -> int:
        return len(self.op_lives)

    def category_share_admin(self, category: Category) -> float:
        total = self.total_admin_lifetimes()
        if not total:
            return 0.0
        return self.taxonomy.admin_counts.get(category, 0) / total

    def summary(self) -> Dict[str, float]:
        """Headline numbers, shaped after the paper's abstract/§6."""
        return {
            "admin_lifetimes": self.total_admin_lifetimes(),
            "admin_asns": self.total_admin_asns(),
            "op_lifetimes": self.total_op_lifetimes(),
            "op_asns": self.total_op_asns(),
            "complete_overlap_share": self.category_share_admin(
                Category.COMPLETE_OVERLAP
            ),
            "partial_overlap_share": self.category_share_admin(
                Category.PARTIAL_OVERLAP
            ),
            "unused_share": self.category_share_admin(Category.UNUSED),
            "outside_op_lives": float(self.outside.outside_op_lives),
            "squatting_candidates": float(len(self.squatting_candidates)),
        }
