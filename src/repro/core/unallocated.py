"""§6.4 — operational lives outside any administrative delegation.

Two sub-populations:

* **once-allocated** ASNs with at least one BGP life entirely outside
  their administrative lives (799 in the paper) — among them the
  post-deallocation squats: activity close to the end of an allocation
  but *far* from the previous BGP life;
* **never-allocated** ASNs (868) — dominated by fat-finger origins and
  internal numbering leaks, analyzed in :mod:`repro.core.misconfig`.

Bogon ASNs are excluded up front, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

from ..asn.bogons import is_bogon_asn
from ..asn.numbers import ASN
from ..lifetimes.records import AdminLifetime, BgpLifetime

__all__ = [
    "PostDeallocCandidate",
    "OutsideDelegationStats",
    "analyze_outside_delegation",
]


@dataclass(frozen=True)
class PostDeallocCandidate:
    """A BGP life after deallocation, shaped like the AS12391 case:
    close to the administrative end, far from the last BGP activity."""

    asn: ASN
    op_start: int
    op_end: int
    days_after_dealloc: int
    days_since_last_op: Optional[int]


@dataclass
class OutsideDelegationStats:
    """Aggregates of the §6.4 analysis."""

    outside_op_lives: int = 0
    once_allocated_asns: Set[ASN] = field(default_factory=set)
    never_allocated_asns: Set[ASN] = field(default_factory=set)
    post_dealloc_candidates: List[PostDeallocCandidate] = field(default_factory=list)
    never_allocated_durations: Dict[ASN, int] = field(default_factory=dict)
    excluded_bogons: int = 0

    def never_allocated_active_longer_than(self, days: int) -> int:
        """Count of never-allocated ASNs active for more than ``days``
        in total (the paper reports >1 day: 427, >1 month: 186, >1
        year: 15)."""
        return sum(1 for d in self.never_allocated_durations.values() if d > days)


def analyze_outside_delegation(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    op_lives: Mapping[ASN, Sequence[BgpLifetime]],
    *,
    squat_proximity_days: int = 90,
    squat_dormancy_days: int = 1000,
) -> OutsideDelegationStats:
    """Split the outside-delegation population and flag likely squats.

    A once-allocated outside life becomes a post-deallocation squat
    candidate when it starts within ``squat_proximity_days`` of an
    administrative end while the ASN's previous BGP activity (if any)
    ended more than ``squat_dormancy_days`` earlier — the AS12391
    pattern (3 days after deallocation, 3,898 days after the last BGP
    life).
    """
    stats = OutsideDelegationStats()
    for asn, ops in op_lives.items():
        if is_bogon_asn(asn):
            stats.excluded_bogons += 1
            continue
        admins = admin_lives.get(asn, ())
        outside = [
            op
            for op in ops
            if not any(op.interval.overlaps(a.interval) for a in admins)
        ]
        if not outside:
            continue
        stats.outside_op_lives += len(outside)
        if admins:
            stats.once_allocated_asns.add(asn)
            sorted_ops = sorted(ops, key=lambda l: l.start)
            for op in outside:
                ended_before = [a for a in admins if a.end < op.start]
                if not ended_before:
                    continue
                nearest_end = max(a.end for a in ended_before)
                days_after = op.start - nearest_end
                if days_after > squat_proximity_days:
                    continue
                previous = [o for o in sorted_ops if o.end < op.start]
                days_since_op = (
                    op.start - max(o.end for o in previous) if previous else None
                )
                if days_since_op is not None and days_since_op < squat_dormancy_days:
                    continue
                stats.post_dealloc_candidates.append(
                    PostDeallocCandidate(
                        asn=asn,
                        op_start=op.start,
                        op_end=op.end,
                        days_after_dealloc=days_after,
                        days_since_last_op=days_since_op,
                    )
                )
        else:
            stats.never_allocated_asns.add(asn)
            stats.never_allocated_durations[asn] = sum(o.duration for o in ops)
    return stats
