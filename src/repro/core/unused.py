"""§6.3 — allocated but never observed in BGP.

Nearly 18% of administrative lives show no overlapping BGP activity at
all.  The paper attributes the phenomenon to three mechanisms, all
reproduced here:

* **limited visibility**, dominated by China (50.6% of its allocated
  ASNs unobserved — upstreams strip intra-country hops before routes
  reach any collector);
* **sibling ASNs** — organizations holding several ASNs but announcing
  through only some of them (the US DoD, Verisign, France Telecom
  pattern);
* **failed 32-bit deployments** — short unused lives are overwhelmingly
  32-bit ASNs whose holders came back for a 16-bit number.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..asn.numbers import ASN, is_32bit_only
from ..lifetimes.records import AdminLifetime, BgpLifetime

__all__ = ["UnusedLivesStats", "analyze_unused_lives"]


@dataclass
class UnusedLivesStats:
    """Aggregates of the §6.3 analysis."""

    unused_lives: int = 0
    total_lives: int = 0
    unused_asns: Set[ASN] = field(default_factory=set)
    never_seen_asns: Set[ASN] = field(default_factory=set)
    durations_by_registry: Dict[str, List[int]] = field(default_factory=dict)
    unused_by_country: Counter = field(default_factory=Counter)
    allocated_by_country: Counter = field(default_factory=Counter)
    short_unused_total_by_registry: Counter = field(default_factory=Counter)
    short_unused_32bit_by_registry: Counter = field(default_factory=Counter)
    unused_with_active_sibling: int = 0
    unused_with_sibling_info: int = 0

    @property
    def unused_share(self) -> float:
        """Fraction of administrative lives that are unused (paper ~18%)."""
        if not self.total_lives:
            return 0.0
        return self.unused_lives / self.total_lives

    def country_unused_fraction(self, cc: str) -> float:
        """Fraction of a country's lives that are unused (China: 50.6%)."""
        allocated = self.allocated_by_country.get(cc, 0)
        if not allocated:
            return 0.0
        return self.unused_by_country.get(cc, 0) / allocated

    def top_unused_countries(self, n: int = 10) -> List[Tuple[str, int, float]]:
        """(country, unused lives, unused fraction), by unused count."""
        return [
            (cc, count, self.country_unused_fraction(cc))
            for cc, count in self.unused_by_country.most_common(n)
        ]

    def short_unused_32bit_share(self, registry: str) -> float:
        """Among unused lives shorter than a month, the 32-bit share
        (paper: 92.6% APNIC .. 38% LACNIC)."""
        total = self.short_unused_total_by_registry.get(registry, 0)
        if not total:
            return 0.0
        return self.short_unused_32bit_by_registry.get(registry, 0) / total

    def sibling_share(self) -> float:
        """Fraction of unused-ASN organizations with another ASN active
        in BGP (evidence for the sibling mechanism)."""
        if not self.unused_with_sibling_info:
            return 0.0
        return self.unused_with_active_sibling / self.unused_with_sibling_info


def analyze_unused_lives(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    op_lives: Mapping[ASN, Sequence[BgpLifetime]],
    *,
    siblings: Optional[Mapping[str, Sequence[ASN]]] = None,
    short_life_days: int = 31,
) -> UnusedLivesStats:
    """Run the §6.3 analysis.

    ``siblings`` maps an organization id to all ASNs it holds, enabling
    the sibling-usage breakdown; omit it and the sibling counters stay
    zero.
    """
    stats = UnusedLivesStats()
    ever_active: Set[ASN] = {
        asn for asn, lives in op_lives.items() if lives
    }
    org_active: Dict[str, bool] = {}
    if siblings:
        for org, asns in siblings.items():
            org_active[org] = any(a in ever_active for a in asns)

    for asn, admins in admin_lives.items():
        ops = op_lives.get(asn, ())
        any_unused = False
        for admin in admins:
            stats.total_lives += 1
            if admin.cc:
                stats.allocated_by_country[admin.cc] += 1
            overlapping = any(
                op.interval.overlaps(admin.interval) for op in ops
            )
            if overlapping:
                continue
            any_unused = True
            stats.unused_lives += 1
            stats.unused_asns.add(asn)
            stats.durations_by_registry.setdefault(admin.registry, []).append(
                admin.duration
            )
            if admin.cc:
                stats.unused_by_country[admin.cc] += 1
            if admin.duration < short_life_days and not admin.open_ended:
                stats.short_unused_total_by_registry[admin.registry] += 1
                if is_32bit_only(asn):
                    stats.short_unused_32bit_by_registry[admin.registry] += 1
            if siblings is not None and admin.org_id is not None:
                if admin.org_id in org_active:
                    stats.unused_with_sibling_info += 1
                    if org_active[admin.org_id]:
                        stats.unused_with_active_sibling += 1
        if any_unused and asn not in ever_active:
            stats.never_seen_asns.add(asn)
    return stats
