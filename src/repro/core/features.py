"""Joint-lens feature extraction for detection pipelines.

§6.1.2 concludes that the compound administrative/operational lens
"could provide additional classification features for machine-learning
based detection approaches" (e.g. on top of Testart et al.'s serial-
hijacker profiling).  This module extracts exactly those features —
one vector per operational lifetime, combining both dimensions — and
ships a transparent reference scorer so the benchmark can measure how
much the administrative dimension adds over BGP-only features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

import numpy as np

from ..asn.numbers import ASN, is_32bit_only
from ..lifetimes.records import AdminLifetime, BgpLifetime

__all__ = [
    "FEATURE_NAMES",
    "LifeFeatures",
    "extract_features",
    "suspicion_score",
    "rank_by_suspicion",
]

#: Order of the numeric feature vector (see :meth:`LifeFeatures.vector`).
FEATURE_NAMES: Tuple[str, ...] = (
    "op_duration",
    "dormancy_before",
    "relative_duration",
    "admin_duration",
    "inside_allocation",
    "after_deallocation",
    "never_allocated",
    "op_life_index",
    "op_life_count",
    "admin_life_count",
    "is_32bit",
    "days_from_admin_start",
    "days_to_admin_end",
)


@dataclass(frozen=True)
class LifeFeatures:
    """The joint-lens features of one operational lifetime."""

    asn: ASN
    op_start: int
    op_duration: int
    dormancy_before: int
    relative_duration: float
    admin_duration: int
    inside_allocation: bool
    after_deallocation: bool
    never_allocated: bool
    op_life_index: int
    op_life_count: int
    admin_life_count: int
    is_32bit: bool
    days_from_admin_start: int
    days_to_admin_end: int

    def vector(self) -> np.ndarray:
        """Numeric vector in :data:`FEATURE_NAMES` order."""
        return np.array(
            [
                self.op_duration,
                self.dormancy_before,
                self.relative_duration,
                self.admin_duration,
                float(self.inside_allocation),
                float(self.after_deallocation),
                float(self.never_allocated),
                self.op_life_index,
                self.op_life_count,
                self.admin_life_count,
                float(self.is_32bit),
                self.days_from_admin_start,
                self.days_to_admin_end,
            ],
            dtype=np.float64,
        )


def extract_features(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    op_lives: Mapping[ASN, Sequence[BgpLifetime]],
    *,
    end_day: int,
) -> List[LifeFeatures]:
    """One feature row per operational lifetime, for every active ASN."""
    rows: List[LifeFeatures] = []
    for asn, ops in op_lives.items():
        admins = sorted(admin_lives.get(asn, ()), key=lambda a: a.start)
        ordered = sorted(ops, key=lambda o: o.start)
        for index, op in enumerate(ordered):
            containing = next(
                (a for a in admins if a.interval.contains_interval(op.interval)),
                None,
            )
            ended_before = [a for a in admins if a.end < op.start]
            if containing is not None:
                previous_ops = [
                    o for o in ordered if o.end < op.start
                    and containing.interval.contains_interval(o.interval)
                ]
                since = (
                    previous_ops[-1].end + 1 if previous_ops else containing.start
                )
                dormancy = op.start - since
                admin_duration = containing.duration
                relative = op.duration / admin_duration
                from_start = op.start - containing.start
                to_end = containing.end - op.end
            else:
                dormancy = (
                    op.start - max(a.end for a in ended_before)
                    if ended_before
                    else 0
                )
                admin_duration = 0
                relative = 0.0
                from_start = 0
                to_end = 0
            rows.append(
                LifeFeatures(
                    asn=asn,
                    op_start=op.start,
                    op_duration=op.duration,
                    dormancy_before=max(dormancy, 0),
                    relative_duration=relative,
                    admin_duration=admin_duration,
                    inside_allocation=containing is not None,
                    after_deallocation=containing is None and bool(ended_before),
                    never_allocated=not admins,
                    op_life_index=index,
                    op_life_count=len(ordered),
                    admin_life_count=len(admins),
                    is_32bit=is_32bit_only(asn),
                    days_from_admin_start=max(from_start, 0),
                    days_to_admin_end=max(to_end, 0),
                )
            )
    rows.sort(key=lambda r: (r.asn, r.op_start))
    return rows


def suspicion_score(
    features: LifeFeatures,
    *,
    use_admin_dimension: bool = True,
) -> float:
    """A transparent 0..1 reference scorer over the feature vector.

    Not a trained model — a monotone combination of the signals §6
    identifies: long dormancy then a short burst, activity right after
    deallocation, never-allocated origins.  With
    ``use_admin_dimension=False`` only the BGP-side features remain,
    quantifying what the administrative lens contributes.
    """
    score = 0.0
    # BGP-only signals: short, late, isolated bursts
    if features.op_duration <= 45:
        score += 0.2
    if features.op_life_count == 1 and features.op_duration <= 45:
        score += 0.1
    if not use_admin_dimension:
        return min(score, 1.0)
    # joint-lens signals
    if features.never_allocated:
        score += 0.35
    if features.after_deallocation and features.dormancy_before >= 1000:
        score += 0.45
    if (
        features.inside_allocation
        and features.dormancy_before >= 1000
        and features.relative_duration <= 0.05
    ):
        score += 0.5
    return min(score, 1.0)


def rank_by_suspicion(
    rows: Sequence[LifeFeatures],
    *,
    use_admin_dimension: bool = True,
) -> List[Tuple[float, LifeFeatures]]:
    """Rows ranked most-suspicious first (stable on ties)."""
    scored = [
        (suspicion_score(row, use_admin_dimension=use_admin_dimension), row)
        for row in rows
    ]
    scored.sort(key=lambda pair: (-pair[0], pair[1].asn, pair[1].op_start))
    return scored
