"""The paper's four-category taxonomy of joint behaviors (§6, Fig. 6).

Every administrative lifetime falls into exactly one of:

1. **complete overlap** — at least one operational lifetime overlaps it
   and every overlapping operational lifetime is fully contained;
2. **partial overlap** — an overlapping operational lifetime starts
   before and/or ends after it;
3. **unused** — no operational lifetime overlaps it at all.

Operational lifetimes are classified symmetrically, with the fourth
category:

4. **outside delegation** — the operational lifetime overlaps no
   administrative lifetime of its ASN (including ASNs never delegated
   at all).

Table 3 reports the resulting counts; Table 5 re-reports them under
different inactivity timeouts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..asn.numbers import ASN
from ..lifetimes.records import AdminLifetime, BgpLifetime
from ..runtime.ledger import record_boundary
from ..runtime.observability import MetricsRegistry

__all__ = ["Category", "TaxonomyResult", "classify"]


class Category(enum.Enum):
    """Joint admin/operational behavior category."""

    COMPLETE_OVERLAP = "complete_overlap"
    PARTIAL_OVERLAP = "partial_overlap"
    UNUSED = "unused"
    OUTSIDE_DELEGATION = "outside_delegation"


@dataclass
class TaxonomyResult:
    """Per-lifetime assignments plus the Table 3 aggregate counts."""

    admin_assignment: Dict[Tuple[ASN, int], Category] = field(default_factory=dict)
    op_assignment: Dict[Tuple[ASN, int], Category] = field(default_factory=dict)
    admin_counts: Dict[Category, int] = field(default_factory=dict)
    op_counts: Dict[Category, int] = field(default_factory=dict)

    def admin_lives_in(
        self, category: Category, lives: Mapping[ASN, Sequence[AdminLifetime]]
    ) -> List[AdminLifetime]:
        """Materialize the administrative lifetimes of one category."""
        out = []
        for (asn, index), assigned in self.admin_assignment.items():
            if assigned is category:
                out.append(lives[asn][index])
        out.sort(key=lambda l: (l.asn, l.start))
        return out

    def op_lives_in(
        self, category: Category, lives: Mapping[ASN, Sequence[BgpLifetime]]
    ) -> List[BgpLifetime]:
        """Materialize the operational lifetimes of one category."""
        out = []
        for (asn, index), assigned in self.op_assignment.items():
            if assigned is category:
                out.append(lives[asn][index])
        out.sort(key=lambda l: (l.asn, l.start))
        return out

    def table3_rows(self) -> List[Tuple[str, int, int]]:
        """(category, admin lives, op lives) rows in paper order."""
        rows = []
        for category in (
            Category.COMPLETE_OVERLAP,
            Category.PARTIAL_OVERLAP,
            Category.UNUSED,
            Category.OUTSIDE_DELEGATION,
        ):
            rows.append(
                (
                    category.value,
                    self.admin_counts.get(category, 0),
                    self.op_counts.get(category, 0),
                )
            )
        return rows

    def totals(self) -> Tuple[int, int]:
        return sum(self.admin_counts.values()), sum(self.op_counts.values())


def classify(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    op_lives: Mapping[ASN, Sequence[BgpLifetime]],
    *,
    metrics: Optional[MetricsRegistry] = None,
) -> TaxonomyResult:
    """Assign every lifetime of both kinds to its taxonomy category.

    Classification is a partition — each lifetime lands in exactly one
    category — and the dataflow ledger holds it to that: the
    ``taxonomy:admin``/``taxonomy:op`` boundaries route independently
    counted lifetime totals into the per-category counts, so a skipped
    or double-assigned lifetime fails the closure check.
    """
    result = TaxonomyResult()

    for asn, lives in admin_lives.items():
        ops = op_lives.get(asn, ())
        for index, admin in enumerate(lives):
            overlapping = [op for op in ops if op.interval.overlaps(admin.interval)]
            if not overlapping:
                category = Category.UNUSED
            elif all(
                admin.interval.contains_interval(op.interval) for op in overlapping
            ):
                category = Category.COMPLETE_OVERLAP
            else:
                category = Category.PARTIAL_OVERLAP
            result.admin_assignment[(asn, index)] = category
            result.admin_counts[category] = result.admin_counts.get(category, 0) + 1

    for asn, ops in op_lives.items():
        admins = admin_lives.get(asn, ())
        for index, op in enumerate(ops):
            overlapping = [
                admin for admin in admins if admin.interval.overlaps(op.interval)
            ]
            if not overlapping:
                category = Category.OUTSIDE_DELEGATION
            elif any(
                admin.interval.contains_interval(op.interval) for admin in overlapping
            ):
                category = Category.COMPLETE_OVERLAP
            else:
                category = Category.PARTIAL_OVERLAP
            result.op_assignment[(asn, index)] = category
            result.op_counts[category] = result.op_counts.get(category, 0) + 1

    # `records_in` counts the input mappings directly — independent of
    # the assignment bookkeeping the category counts come from
    record_boundary(
        "taxonomy:admin",
        records_in=sum(len(lives) for lives in admin_lives.values()),
        routed={c.value: n for c, n in result.admin_counts.items()},
        metrics=metrics,
    )
    record_boundary(
        "taxonomy:op",
        records_in=sum(len(ops) for ops in op_lives.values()),
        routed={c.value: n for c, n in result.op_counts.items()},
        metrics=metrics,
    )
    return result
