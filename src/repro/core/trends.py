"""Bird's-eye longitudinal trends (§5 and Appendix A).

Everything here reduces lifetime sets to the series and tables of the
paper's macro analysis: daily alive counts per registry for both
dimensions (Fig. 4/13), lifetime multiplicity per ASN (Table 2),
duration CDFs (Fig. 5/9), quarterly birth rates and birth/death balance
(Fig. 10/11), 16- vs 32-bit allocation counts (Fig. 12), life duration
by birth year (Fig. 14), country shares (Table 4), and the 16-bit
exhaustion accounting (Appendix A).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..asn.numbers import ASN, is_16bit
from ..lifetimes.records import AdminLifetime, BgpLifetime
from ..timeline.dates import Day, quarter_of, year_of

__all__ = [
    "DailySeries",
    "alive_counts",
    "alive_counts_by_registry",
    "lives_per_asn_table",
    "duration_cdf",
    "quarterly_birth_rate",
    "quarterly_balance",
    "bit_class_counts",
    "duration_by_birth_year",
    "country_shares",
    "crossover_day",
]


@dataclass(frozen=True)
class DailySeries:
    """A per-day integer series over an inclusive day window."""

    start: Day
    values: np.ndarray  # one entry per day

    @property
    def end(self) -> Day:
        return self.start + len(self.values) - 1

    def at(self, day: Day) -> int:
        if not self.start <= day <= self.end:
            raise ValueError("day outside the series window")
        return int(self.values[day - self.start])

    def final(self) -> int:
        return int(self.values[-1])

    def max(self) -> Tuple[Day, int]:
        idx = int(np.argmax(self.values))
        return self.start + idx, int(self.values[idx])


def _accumulate(
    intervals: Sequence[Tuple[Day, Day]], start: Day, end: Day
) -> np.ndarray:
    """Daily count of intervals covering each day (difference array)."""
    length = end - start + 1
    diff = np.zeros(length + 1, dtype=np.int64)
    for lo, hi in intervals:
        lo_c, hi_c = max(lo, start), min(hi, end)
        if lo_c > hi_c:
            continue
        diff[lo_c - start] += 1
        diff[hi_c - start + 1] -= 1
    return np.cumsum(diff[:-1])


def alive_counts(
    lives: Mapping[ASN, Sequence[AdminLifetime]] | Mapping[ASN, Sequence[BgpLifetime]],
    start: Day,
    end: Day,
) -> DailySeries:
    """Per-day count of ASNs with a running lifetime (Fig. 4 black lines)."""
    intervals = [
        (life.start, life.end) for per_asn in lives.values() for life in per_asn
    ]
    return DailySeries(start, _accumulate(intervals, start, end))


def alive_counts_by_registry(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    start: Day,
    end: Day,
) -> Dict[str, DailySeries]:
    """Per-registry daily alive counts (Fig. 4 colored solid lines).

    A transferred lifetime counts toward its final registry, matching
    the dataset's single ``registry`` field.
    """
    buckets: Dict[str, List[Tuple[Day, Day]]] = {}
    for per_asn in admin_lives.values():
        for life in per_asn:
            buckets.setdefault(life.registry, []).append((life.start, life.end))
    return {
        registry: DailySeries(start, _accumulate(intervals, start, end))
        for registry, intervals in sorted(buckets.items())
    }


def alive_bgp_counts_by_registry(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    op_lives: Mapping[ASN, Sequence[BgpLifetime]],
    start: Day,
    end: Day,
) -> Dict[str, DailySeries]:
    """Per-registry daily counts of ASNs alive in BGP (Fig. 4 dashed).

    BGP lifetimes carry no registry, so each ASN's operational activity
    is attributed to the registry of its (final) administrative life —
    ASNs never delegated are excluded, as in the paper's per-RIR lines.
    """
    registry_of: Dict[ASN, str] = {}
    for asn, lives in admin_lives.items():
        if lives:
            registry_of[asn] = lives[-1].registry
    buckets: Dict[str, List[Tuple[Day, Day]]] = {}
    for asn, lives in op_lives.items():
        registry = registry_of.get(asn)
        if registry is None:
            continue
        for life in lives:
            buckets.setdefault(registry, []).append((life.start, life.end))
    return {
        registry: DailySeries(start, _accumulate(intervals, start, end))
        for registry, intervals in sorted(buckets.items())
    }


def crossover_day(a: DailySeries, b: DailySeries) -> Optional[Day]:
    """First day series ``a`` exceeds ``b`` for good (RIPE-passes-ARIN).

    Returns the first day from which ``a`` stays strictly above ``b``
    until the end of the window, or ``None`` if that never happens.
    """
    if a.start != b.start or len(a.values) != len(b.values):
        raise ValueError("series windows differ")
    above = a.values > b.values
    if not above[-1]:
        return None
    idx = len(above) - 1
    while idx > 0 and above[idx - 1]:
        idx -= 1
    return a.start + idx


def lives_per_asn_table(
    lives: Mapping[ASN, Sequence[AdminLifetime]] | Mapping[ASN, Sequence[BgpLifetime]],
    registry_of: Mapping[ASN, str],
) -> Dict[str, Dict[str, float]]:
    """Table 2: share of ASNs with 1 / 2 / >2 lifetimes, per registry."""
    counts: Dict[str, Counter] = {}
    for asn, per_asn in lives.items():
        registry = registry_of.get(asn)
        if registry is None or not per_asn:
            continue
        bucket = "1" if len(per_asn) == 1 else "2" if len(per_asn) == 2 else ">2"
        counts.setdefault(registry, Counter())[bucket] += 1
    out: Dict[str, Dict[str, float]] = {}
    for registry, counter in sorted(counts.items()):
        total = sum(counter.values())
        out[registry] = {
            bucket: counter.get(bucket, 0) / total for bucket in ("1", "2", ">2")
        }
    overall = Counter()
    for counter in counts.values():
        overall.update(counter)
    total = sum(overall.values())
    if total:
        out["total"] = {
            bucket: overall.get(bucket, 0) / total for bucket in ("1", "2", ">2")
        }
    return out


def duration_cdf(durations: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF points (sorted durations, cumulative fractions)."""
    if not durations:
        return np.array([]), np.array([])
    xs = np.sort(np.asarray(durations, dtype=np.int64))
    ys = np.arange(1, len(xs) + 1) / len(xs)
    return xs, ys


def cdf_at(durations: Sequence[int], threshold: int) -> float:
    """Fraction of durations <= threshold."""
    if not durations:
        return 0.0
    return sum(1 for d in durations if d <= threshold) / len(durations)


def quarterly_birth_rate(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    *,
    by_reg_date: bool = True,
) -> Dict[str, Dict[Tuple[int, int], int]]:
    """Fig. 10: births per (year, quarter) per registry.

    With ``by_reg_date`` the registration date defines the birth (the
    paper sees allocations "dating back to 1992" this way); otherwise
    the first delegation-file appearance does.
    """
    out: Dict[str, Dict[Tuple[int, int], int]] = {}
    for per_asn in admin_lives.values():
        for life in per_asn:
            birth = life.reg_date if by_reg_date else life.start
            bucket = quarter_of(birth)
            registry = out.setdefault(life.registries[0], {})
            registry[bucket] = registry.get(bucket, 0) + 1
    return out


def quarterly_balance(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    start: Day,
    end: Day,
) -> Dict[str, Dict[Tuple[int, int], int]]:
    """Fig. 11: births minus deaths per quarter per registry."""
    out: Dict[str, Dict[Tuple[int, int], int]] = {}
    for per_asn in admin_lives.values():
        for life in per_asn:
            registry = out.setdefault(life.registry, {})
            if start <= life.start <= end:
                bucket = quarter_of(life.start)
                registry[bucket] = registry.get(bucket, 0) + 1
            if not life.open_ended and start <= life.end <= end:
                bucket = quarter_of(life.end)
                registry[bucket] = registry.get(bucket, 0) - 1
    return out


def bit_class_counts(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    start: Day,
    end: Day,
) -> Dict[str, Dict[str, DailySeries]]:
    """Fig. 12: per-registry daily allocated counts, split 16/32-bit."""
    buckets: Dict[str, Dict[str, List[Tuple[Day, Day]]]] = {}
    for asn, per_asn in admin_lives.items():
        cls = "16" if is_16bit(asn) else "32"
        for life in per_asn:
            per_reg = buckets.setdefault(life.registry, {"16": [], "32": []})
            per_reg[cls].append((life.start, life.end))
    return {
        registry: {
            cls: DailySeries(start, _accumulate(intervals, start, end))
            for cls, intervals in classes.items()
        }
        for registry, classes in sorted(buckets.items())
    }


def duration_by_birth_year(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
) -> Dict[str, Dict[int, List[int]]]:
    """Fig. 14: per registry, per birth year, the life durations.

    Open-ended lives are included (as the boxplots do — recent cohorts
    are right-censored by construction).
    """
    out: Dict[str, Dict[int, List[int]]] = {}
    for per_asn in admin_lives.values():
        for life in per_asn:
            year = year_of(life.start)
            out.setdefault(life.registry, {}).setdefault(year, []).append(
                life.duration
            )
    return out


def country_shares(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    registry: str,
    *,
    as_of: Optional[Day] = None,
    top: int = 5,
) -> List[Tuple[str, int, float]]:
    """Table 4: top countries by alive allocations in one registry.

    ``as_of`` restricts to lives running on that day (the paper's 2010/
    2015/2021 snapshots); ``None`` counts all lives ever.
    """
    counter: Counter = Counter()
    for per_asn in admin_lives.values():
        for life in per_asn:
            if life.registry != registry or not life.cc:
                continue
            if as_of is not None and not (life.start <= as_of <= life.end):
                continue
            counter[life.cc] += 1
    total = sum(counter.values())
    rows = []
    for cc, count in counter.most_common(top):
        rows.append((cc, count, count / total if total else 0.0))
    return rows
