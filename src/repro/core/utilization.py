"""§6.1.1 — how fully are administrative lifetimes used in BGP?

Computes the Fig. 7 utilization CDF (sum of contained operational
lifetimes over the administrative duration) and the three
under-utilization mechanisms the paper characterizes: late
deallocations (months between the last BGP day and the deallocation),
late starts (delay from allocation to first BGP activity), sporadic /
intermittent use (many operational lives inside one administrative
life), and largely spaced operational lives (>365 days apart).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..asn.numbers import ASN
from ..lifetimes.records import AdminLifetime, BgpLifetime
from ..timeline.intervals import IntervalSet

__all__ = [
    "UtilizationStats",
    "utilization_of",
    "analyze_utilization",
    "median",
]


def median(values: Sequence[int]) -> Optional[float]:
    """Median of a sequence, or ``None`` when empty."""
    if not values:
        return None
    return float(np.median(np.asarray(values)))


def utilization_of(
    admin: AdminLifetime, ops: Sequence[BgpLifetime]
) -> Tuple[float, List[BgpLifetime]]:
    """Utilization ratio of one administrative life and the operational
    lives it fully contains (the Fig. 7 definition)."""
    contained = [
        op for op in ops if admin.interval.contains_interval(op.interval)
    ]
    if not contained:
        return 0.0, []
    covered = IntervalSet([op.interval for op in contained])
    return covered.total_days / admin.duration, contained


@dataclass
class UtilizationStats:
    """Aggregate §6.1.1 statistics.

    ``utilizations`` holds one ratio per administrative life that fully
    contains at least one operational life (the Fig. 7 population);
    delay lists are in days and exclude right-censored lives.
    """

    utilizations: List[float] = field(default_factory=list)
    late_dealloc_by_registry: Dict[str, List[int]] = field(default_factory=dict)
    late_start_by_registry: Dict[str, List[int]] = field(default_factory=dict)
    op_lives_per_admin: List[int] = field(default_factory=list)
    sporadic_asns: List[ASN] = field(default_factory=list)
    widely_spaced_admin_lives: int = 0
    multi_op_admin_lives: int = 0

    def utilization_cdf_at(self, threshold: float) -> float:
        """Fraction of lives with utilization <= threshold."""
        if not self.utilizations:
            return 0.0
        return sum(1 for u in self.utilizations if u <= threshold) / len(
            self.utilizations
        )

    def share_with_usage_above(self, threshold: float) -> float:
        """Fraction of lives with utilization > threshold (paper quotes
        70% above 0.75 and 45% above 0.95)."""
        return 1.0 - self.utilization_cdf_at(threshold)

    def op_count_shares(self) -> Dict[str, float]:
        """Share of (complete-overlap) admin lives with 1 / 2 / >2
        contained operational lives (§6.1.1: 84.1% / 10.4% / 5.4%)."""
        total = len(self.op_lives_per_admin)
        if not total:
            return {"1": 0.0, "2": 0.0, ">2": 0.0}
        one = sum(1 for n in self.op_lives_per_admin if n == 1)
        two = sum(1 for n in self.op_lives_per_admin if n == 2)
        return {
            "1": one / total,
            "2": two / total,
            ">2": (total - one - two) / total,
        }

    def median_late_dealloc(self) -> Dict[str, Optional[float]]:
        return {
            registry: median(values)
            for registry, values in sorted(self.late_dealloc_by_registry.items())
        }

    def median_late_start(self) -> Dict[str, Optional[float]]:
        return {
            registry: median(values)
            for registry, values in sorted(self.late_start_by_registry.items())
        }


def analyze_utilization(
    admin_lives: Mapping[ASN, Sequence[AdminLifetime]],
    op_lives: Mapping[ASN, Sequence[BgpLifetime]],
    *,
    sporadic_threshold: int = 10,
    spacing_threshold: int = 365,
) -> UtilizationStats:
    """Run the full §6.1.1 analysis over complete-overlap lifetimes.

    ``sporadic_threshold`` flags ASNs whose administrative life holds
    more than that many operational lives (the paper finds 287 with
    more than 10); ``spacing_threshold`` counts administrative lives
    whose consecutive operational lives sit further apart than it
    (3,789 beyond 365 days in the paper).
    """
    stats = UtilizationStats()
    for asn, lives in admin_lives.items():
        ops = op_lives.get(asn, ())
        for admin in lives:
            ratio, contained = utilization_of(admin, ops)
            if not contained:
                continue
            overlapping = [
                op for op in ops if op.interval.overlaps(admin.interval)
            ]
            if len(overlapping) != len(contained):
                continue  # partial overlap: not the Fig. 7 population
            stats.utilizations.append(ratio)
            stats.op_lives_per_admin.append(len(contained))
            if len(contained) > 1:
                stats.multi_op_admin_lives += 1
                gaps = [
                    later.start - earlier.end - 1
                    for earlier, later in zip(contained, contained[1:])
                ]
                if any(gap > spacing_threshold for gap in gaps):
                    stats.widely_spaced_admin_lives += 1
            if len(contained) > sporadic_threshold:
                stats.sporadic_asns.append(asn)
            last_op = contained[-1]
            if not admin.open_ended and not last_op.open_ended:
                stats.late_dealloc_by_registry.setdefault(
                    admin.registry, []
                ).append(admin.end - last_op.end)
            first_op = contained[0]
            stats.late_start_by_registry.setdefault(admin.registry, []).append(
                first_op.start - admin.start
            )
    return stats
