"""The paper's primary contribution: joint analysis of administrative
and operational ASN lifetimes (§5, §6)."""

from .features import (
    FEATURE_NAMES,
    LifeFeatures,
    extract_features,
    rank_by_suspicion,
    suspicion_score,
)
from .geography import (
    alive_counts_by_country,
    country_growth,
    fastest_growing_countries,
)
from .joint import JointAnalysis
from .report import render_report
from .roles import (
    Role,
    RoleActivity,
    classify_role,
    collect_role_activity,
    role_census,
)
from .misconfig import (
    MisconfigClass,
    PathEvidence,
    classify_all,
    classify_suspect,
    collect_path_evidence,
)
from .partial import PartialOverlapStats, analyze_partial_overlaps
from .squatting import (
    DEFAULT_DORMANCY_DAYS,
    DEFAULT_RELATIVE_DURATION,
    SquattingCandidate,
    detect_dormant_squatting,
    score_against_truth,
)
from .taxonomy import Category, TaxonomyResult, classify
from .trends import (
    DailySeries,
    alive_bgp_counts_by_registry,
    alive_counts,
    alive_counts_by_registry,
    bit_class_counts,
    cdf_at,
    country_shares,
    crossover_day,
    duration_by_birth_year,
    duration_cdf,
    lives_per_asn_table,
    quarterly_balance,
    quarterly_birth_rate,
)
from .unallocated import (
    OutsideDelegationStats,
    PostDeallocCandidate,
    analyze_outside_delegation,
)
from .unused import UnusedLivesStats, analyze_unused_lives
from .utilization import UtilizationStats, analyze_utilization, utilization_of

__all__ = [
    "JointAnalysis",
    "Category",
    "TaxonomyResult",
    "classify",
    "DailySeries",
    "alive_counts",
    "alive_counts_by_registry",
    "alive_bgp_counts_by_registry",
    "crossover_day",
    "lives_per_asn_table",
    "duration_cdf",
    "cdf_at",
    "quarterly_birth_rate",
    "quarterly_balance",
    "bit_class_counts",
    "duration_by_birth_year",
    "country_shares",
    "UtilizationStats",
    "analyze_utilization",
    "utilization_of",
    "SquattingCandidate",
    "detect_dormant_squatting",
    "score_against_truth",
    "DEFAULT_DORMANCY_DAYS",
    "DEFAULT_RELATIVE_DURATION",
    "PartialOverlapStats",
    "analyze_partial_overlaps",
    "UnusedLivesStats",
    "analyze_unused_lives",
    "OutsideDelegationStats",
    "PostDeallocCandidate",
    "analyze_outside_delegation",
    "MisconfigClass",
    "PathEvidence",
    "classify_suspect",
    "classify_all",
    "collect_path_evidence",
    "FEATURE_NAMES",
    "LifeFeatures",
    "extract_features",
    "suspicion_score",
    "rank_by_suspicion",
    "render_report",
    "Role",
    "RoleActivity",
    "collect_role_activity",
    "classify_role",
    "role_census",
    "alive_counts_by_country",
    "country_growth",
    "fastest_growing_countries",
]
