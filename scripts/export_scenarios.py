#!/usr/bin/env python
"""Regenerate the committed scenario files under ``examples/scenarios/``.

The named scenario library (``repro.scenario.library``) is the source
of truth; this script writes its JSON twins.  A unit test
(``tests/test_scenario.py``) fails if the committed files drift from
the library, so run this after editing the library:

    PYTHONPATH=src python scripts/export_scenarios.py

The golden taxonomy outputs next to them are produced by running each
scenario, not by this script:

    PYTHONPATH=src python -m repro.cli simulate --scenario NAME \
        --out /tmp/run --taxonomy-out examples/scenarios/golden/NAME.json
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenario import NAMED_SCENARIOS, save_scenario  # noqa: E402


def main() -> int:
    out_dir = REPO_ROOT / "examples" / "scenarios"
    for name, scenario in NAMED_SCENARIOS.items():
        path = save_scenario(scenario, out_dir / f"{name}.json")
        print(f"wrote {path.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
