#!/usr/bin/env python3
"""Conservation gate over an emitted dataflow ledger.

Loads a ``ledger.json`` (written by ``repro simulate --trace`` or any
run that calls :func:`repro.runtime.write_ledger`), replays the
closure check — every instrumented boundary must satisfy
``in == kept + dropped + routed`` — and exits non-zero listing each
violating stage.  CI runs this on the fault-injection and perf-gate
artifacts: a non-conserving stage means records silently leaked or
were double-counted across a lossy boundary, which no output diff
would catch on synthetic data.

Usage::

    PYTHONPATH=src python scripts/check_ledger.py out/ledger.json
    PYTHONPATH=src python scripts/check_ledger.py out/        # dir works too
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.runtime import check_ledger, load_ledger, render_ledger


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "ledger", type=Path,
        help="ledger.json path, or a run directory containing one",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the conservation table; print only the verdict",
    )
    args = parser.parse_args(argv)

    try:
        doc = load_ledger(args.ledger)
    except FileNotFoundError:
        sys.exit(f"check_ledger: {args.ledger} not found")
    except ValueError as exc:
        sys.exit(f"check_ledger: {exc}")

    if not args.quiet:
        print(render_ledger(doc))

    violations = check_ledger(doc)
    stages = doc.get("stages", [])
    if violations:
        print(f"check_ledger: FAIL — {len(violations)} conservation "
              f"violation(s) across {len(stages)} stages:", file=sys.stderr)
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    print(f"check_ledger: {len(stages)} stages conserve "
          f"(in == kept + dropped + routed at every boundary)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
