#!/usr/bin/env python3
"""Fault→trace closure check: every injected fault must reach the trace.

Runs an instrumented pipeline build under deterministic ambient fault
injection (``REPRO_FAULT_SEED``), with the run's tracer subscribed to
the ambient injector, and then verifies that *every* fault the injector
actually fired appears as a ``fault: site=... kind=...`` annotation in
the emitted JSON-lines trace.  CI runs this after the fault-injection
suite; a fault that fires without leaving a trace annotation means the
observability layer lost a failure the runtime survived silently —
exactly the blind spot the layer exists to close.

The run's trace, metrics snapshot, and manifest are written to
``--out`` (default: a temp directory) so CI can upload them as
artifacts.

Usage::

    REPRO_FAULT_SEED=2021 REPRO_FAULT_RATE=0.25 \\
        PYTHONPATH=src python scripts/check_fault_trace.py --out /tmp/fault-run
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

from repro.runtime import (
    ArtifactCache,
    PipelineStats,
    ProcessPoolBackend,
    build_ledger,
    build_run_manifest,
    reset_metrics,
    write_json_atomic,
    write_ledger,
    write_run_manifest,
)
from repro.runtime.faults import from_env
from repro.simulation import build_datasets
from repro.simulation.config import tiny


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=None,
        help="directory for the trace/metrics/manifest artifacts",
    )
    parser.add_argument("--seed", type=int, default=2021, help="world seed")
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="process-pool width (worker faults need a pool)",
    )
    args = parser.parse_args(argv)

    injector = from_env()
    if injector is None:
        sys.exit(
            "check_fault_trace: ambient injection is off — set REPRO_FAULT_SEED "
            "(and optionally REPRO_FAULT_RATE/REPRO_FAULT_SITES) first"
        )

    out = args.out or Path(tempfile.mkdtemp(prefix="fault-trace-"))
    out.mkdir(parents=True, exist_ok=True)

    metrics = reset_metrics()
    stats = PipelineStats(metrics=metrics)
    detach = stats.tracer.subscribe_faults(injector)
    try:
        with tempfile.TemporaryDirectory(prefix="fault-cache-") as cache_dir:
            # two builds through one faulty cache: the first stores
            # (write/replace faults), the second loads (read faults)
            cache = ArtifactCache(cache_dir)
            config = tiny(seed=args.seed)
            with ProcessPoolBackend(args.jobs) as executor:
                bundle = build_datasets(
                    config, cache=cache, executor=executor, stats=stats
                )
                again = build_datasets(
                    config, cache=cache, executor=executor, stats=stats
                )
    finally:
        detach()

    # faults never change results — only timings and the event log
    if again.admin_lives != bundle.admin_lives or again.op_lives != bundle.op_lives:
        print("check_fault_trace: FAIL — datasets drifted under injection",
              file=sys.stderr)
        return 1

    trace_path = stats.tracer.write_jsonl(out / "trace.jsonl")
    write_json_atomic(out / "metrics.json", metrics.snapshot())
    # the dataflow ledger must stay conserving under injection: retried
    # tasks may not double-count, failed tasks may not leak partial
    # counts (scripts/check_ledger.py gates this artifact in CI)
    write_ledger(out / "ledger.json", build_ledger(metrics))
    manifest = build_run_manifest(
        config=config, settings={"jobs": args.jobs}, stats=stats
    )
    write_run_manifest(out / "run_manifest.json", manifest)

    lines = [json.loads(line) for line in trace_path.read_text(encoding="utf-8").splitlines()]
    annotations = [
        note
        for line in lines[1:]
        for note in line.get("annotations", [])
        if note.startswith("fault: ")
    ]

    fired = injector.events
    missing = []
    unclaimed = list(annotations)
    for event in fired:
        needle = f"fault: site={event.site} kind={event.kind}"
        match = next((a for a in unclaimed if a.startswith(needle)), None)
        if match is None:
            missing.append(event)
        else:
            unclaimed.remove(match)

    snapshot = metrics.snapshot()
    counted = snapshot["counters"].get("faults.injected", 0)
    print(f"check_fault_trace: {len(fired)} faults fired "
          f"({counted} counted), {len(annotations)} trace annotations, "
          f"artifacts in {out}")
    for site in sorted({e.site for e in fired}):
        n = sum(1 for e in fired if e.site == site)
        print(f"  {site:<16} {n}")

    if not fired:
        print(
            "check_fault_trace: FAIL — no faults fired; raise REPRO_FAULT_RATE "
            "so the check exercises the closure", file=sys.stderr,
        )
        return 1
    if missing:
        print(f"check_fault_trace: FAIL — {len(missing)} fired faults never "
              f"reached the trace:", file=sys.stderr)
        for event in missing:
            print(f"  - site={event.site} kind={event.kind} detail={event.detail}",
                  file=sys.stderr)
        return 1
    print("check_fault_trace: every injected fault is annotated in the trace")
    return 0


if __name__ == "__main__":
    sys.exit(main())
