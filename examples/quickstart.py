#!/usr/bin/env python3
"""Quickstart: build a world, run the full pipeline, read the results.

This walks the paper's Fig. 1 pipeline end to end:

  simulate 17 years of RIR + BGP activity
    -> corrupt the delegation archive the way reality does (§3.1)
    -> restore it
    -> build administrative (§4.1) and operational (§4.2) lifetimes
    -> joint analysis (§5, §6)

Run:  python examples/quickstart.py [scale]
"""

import sys

from repro.lifetimes import dump_admin_dataset, dump_bgp_dataset
from repro.simulation import WorldConfig, build_datasets
from repro.timeline import to_iso


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    print(f"Simulating a world at scale {scale} (paper scale = 1.0) ...")
    bundle = build_datasets(WorldConfig(seed=42, scale=scale))
    joint = bundle.joint

    print("\n=== Datasets (cf. §4) ===")
    print(f"administrative lifetimes: {joint.total_admin_lifetimes():6d} "
          f"over {joint.total_admin_asns()} ASNs (paper: 126,953 / 106,873)")
    print(f"operational lifetimes:    {joint.total_op_lifetimes():6d} "
          f"over {joint.total_op_asns()} ASNs (paper: 152,926 / 96,391)")

    print("\n=== Restoration (cf. §3.1) ===")
    for step in bundle.restoration_report.steps:
        total = step.total()
        print(f"  {step.step:28s} {total:5d} repairs")

    print("\n=== Taxonomy (cf. Table 3) ===")
    print(f"  {'category':22s} {'admin lives':>12s} {'op lives':>10s}")
    for name, admin, op in joint.taxonomy.table3_rows():
        print(f"  {name:22s} {admin:12d} {op:10d}")

    print("\n=== Headline joint findings (cf. §6) ===")
    summary = joint.summary()
    print(f"  complete overlap: {summary['complete_overlap_share']:.1%} "
          "(paper: 78.6%)")
    print(f"  partial overlap:  {summary['partial_overlap_share']:.1%} "
          "(paper: 3.4%)")
    print(f"  unused lives:     {summary['unused_share']:.1%} (paper: 17.9%)")
    print(f"  dormant-squat candidates: {len(joint.squatting_candidates)} "
          f"(ground truth events: {int(joint.squatting_score()['truth_events'])})")

    # export the Listing 1 JSON datasets
    admin_count = dump_admin_dataset(bundle.admin_lives, "admin_dataset.json")
    op_count = dump_bgp_dataset(bundle.op_lives, "operational_dataset.json")
    print(f"\nWrote admin_dataset.json ({admin_count} records) and "
          f"operational_dataset.json ({op_count} records).")

    example_asn = next(iter(sorted(bundle.admin_lives)))
    life = bundle.admin_lives[example_asn][0]
    print(f"\nExample record (cf. Listing 1): AS{example_asn} "
          f"allocated {to_iso(life.start)} .. {to_iso(life.end)} "
          f"by {life.registry}")


if __name__ == "__main__":
    main()
