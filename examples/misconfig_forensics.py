#!/usr/bin/env python3
"""Message-level forensics of never-allocated origins (§6.4).

The §6.4 analysis finds 868 ASNs in BGP that no RIR ever delegated and
manually classifies them: 76% failed AS-path prepends, 24% one-digit
typos causing MOAS conflicts, plus huge internal ASNs leaking through
large operators.  This example drives the same investigation on the
message level: stream a day of synthetic RIB data through the
sanitizer, pull AS-path evidence for each suspect origin, and let the
classifier explain it.

Run:  python examples/misconfig_forensics.py
"""

from collections import Counter

from repro.bgp import SyntheticBgpStream, sanitize, SanitizeStats
from repro.core import (
    MisconfigClass,
    classify_suspect,
    collect_path_evidence,
)
from repro.simulation import WorldConfig, WorldSimulator
from repro.timeline import to_iso


def main() -> None:
    world = WorldSimulator(WorldConfig(seed=21, scale=0.02)).run()
    suspects_truth = {
        e.origin: e.kind
        for e in world.events
        if e.kind in ("fat_finger_prepend", "fat_finger_digit",
                      "internal_leak", "noise_origin")
    }
    print(f"{len(suspects_truth)} never-allocated origins planted "
          "(paper finds 868 over 17 years)")

    stream = SyntheticBgpStream(
        world.topology, world.collectors, world.announcements_for_day
    )

    # pick investigation days: one per distinct event kind
    days = {}
    for event in world.events:
        if event.origin in suspects_truth:
            days.setdefault(event.kind, event.interval.start)

    verdicts = Counter()
    details = []
    for kind, day in sorted(days.items()):
        stats = SanitizeStats()
        elements = list(sanitize(stream.elements_for_day(day), stats))
        active_suspects = {
            e.origin
            for e in world.events
            if e.origin in suspects_truth and e.active_on(day)
        }
        evidence = collect_path_evidence(elements, active_suspects)
        for origin, ev in sorted(evidence.items()):
            verdict = classify_suspect(ev)
            verdicts[verdict] += 1
            details.append((day, origin, suspects_truth[origin], verdict, ev))

    print("\n=== Classifier verdicts vs. planted truth ===")
    for day, origin, truth, verdict, ev in details:
        mark = "✓" if verdict == truth or (
            truth == "noise_origin" and verdict == MisconfigClass.UNEXPLAINED
        ) else "✗"
        hops = ",".join(f"AS{h}" for h in ev.first_hops) or "-"
        print(f"  {mark} {to_iso(day)}  AS{origin}: truth={truth:20s} "
              f"verdict={verdict:20s} first-hop={hops}")

    print("\n=== Verdict distribution ===")
    for verdict, count in verdicts.most_common():
        print(f"  {verdict:22s} {count}")

    # show one piece of raw evidence, the way a human analyst reads it
    leak = next((d for d in details if d[2] == "internal_leak"), None)
    if leak is not None:
        _, origin, _, _, ev = leak
        print(f"\n=== Raw evidence for AS{origin} (internal leak) ===")
        print(f"  announced prefixes : {[str(p) for p in ev.prefixes]}")
        print(f"  first hops         : {ev.first_hops}")
        print(f"  covering origins   : {ev.covering_origins} "
              "(a large operator announces the covering aggregate —")
        print("                        the AS290012147-inside-Verizon "
              "pattern of §6.4)")


if __name__ == "__main__":
    main()
