#!/usr/bin/env python3
"""Auditing the §3.1 archive restoration against known ground truth.

The paper restored 17 years of delegation files but could never *score*
that restoration — nobody knows what the true archives should have
said.  Here we can: the defects are injected on top of a consistent
simulated archive, so every repair is checkable.

This example corrupts an archive with every §3.1 defect class, runs the
six-step pipeline, and reports (a) what was injected, (b) what was
repaired, and (c) how close the recovered lifetimes are to the truth.

Run:  python examples/restoration_audit.py
"""

from repro.rir import ERX_PLACEHOLDER_DATE
from repro.simulation import WorldConfig, build_datasets
from repro.timeline import to_iso


def main() -> None:
    config = WorldConfig(seed=13, scale=0.015)
    bundle = build_datasets(config)

    print("=== Injected defects (ground truth) ===")
    by_kind = {}
    for defect in bundle.injected_defects:
        by_kind[defect.kind] = by_kind.get(defect.kind, 0) + 1
    for kind in sorted(by_kind):
        print(f"  {kind:28s} {by_kind[kind]:5d}")

    print("\n=== Restoration report (cf. §3.1) ===")
    print(bundle.restoration_report.render())

    # Score: lifetime boundaries vs. the simulator's truth
    truth = bundle.world.lives_by_asn()
    exact = close = off = 0
    for asn, truth_lives in truth.items():
        recovered = bundle.admin_lives.get(asn, [])
        if len(recovered) != len(truth_lives):
            off += 1
            continue
        ok = True
        for t, r in zip(truth_lives, recovered):
            expected_end = t.end if t.end is not None else config.end_day
            start = t.start if not r.left_censored else r.start
            if (r.start, r.end) != (start, expected_end):
                ok = False
                break
        if ok:
            exact += 1
        else:
            close += 1
    total = len(truth)
    print("\n=== Lifetime recovery score ===")
    print(f"  ASNs with exactly matching lifetimes: {exact} "
          f"({exact / total:.1%})")
    print(f"  right count, boundary deviations:     {close} "
          f"({close / total:.1%})")
    print(f"  lifetime count mismatches:            {off} "
          f"({off / total:.1%})")
    print("  (deviations are expected where a lifetime boundary fell on "
          "a missing-file day — unrecoverable, as in the paper)")

    # ERX: the placeholder dates must be gone
    print("\n=== ERX placeholder repair (cf. §3.1 step v) ===")
    repaired = leftover = 0
    for asn, original in bundle.world.erx_reference.items():
        lives = bundle.admin_lives.get(asn, [])
        for life in lives:
            if life.reg_date == ERX_PLACEHOLDER_DATE:
                leftover += 1
            elif life.reg_date == original:
                repaired += 1
    print(f"  original dates restored: {repaired}")
    print(f"  placeholders left:       {leftover}")
    print(f"  (placeholder value: {to_iso(ERX_PLACEHOLDER_DATE)})")


if __name__ == "__main__":
    main()
