#!/usr/bin/env python3
"""Hunting squatted dormant ASNs (§6.1.2), Fig. 8 style.

The workload the paper's introduction motivates: malicious actors
originate prefixes from long-dormant (but allocated) AS numbers to stay
under the radar.  The joint admin/BGP lens makes them stand out: a
burst of activity after >1000 days of allocated silence, tiny relative
to the administrative life.

This example runs the detector over a simulated world, scores it
against the injected ground truth, and prints a textual Fig. 8: the
daily prefix-origination counts of the squatted ASNs around their
awakening.

Run:  python examples/squatting_hunt.py
"""

from repro.bgp import MALICIOUS_KINDS, SQUAT_DORMANT
from repro.simulation import WorldConfig, build_datasets
from repro.timeline import to_iso


def sparkline(values, width: int = 60) -> str:
    """Render a list of counts as a coarse text sparkline."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    top = max(values) or 1
    step = max(1, len(values) // width)
    sampled = [max(values[i : i + step]) for i in range(0, len(values), step)]
    return "".join(blocks[min(8, int(v / top * 8))] for v in sampled)


def main() -> None:
    bundle = build_datasets(WorldConfig(seed=7, scale=0.02))
    joint = bundle.joint
    world = bundle.world

    candidates = joint.squatting_candidates
    score = joint.squatting_score()
    print(f"Detector flagged {len(candidates)} operational lives "
          "(paper: 3,051 matches, 76 confirmed)")
    print(f"ground-truth squats: {int(score['truth_events'])}, "
          f"recall {score['recall']:.0%}, precision {score['precision']:.0%}")
    print("(low precision is expected: legitimate irregular behavior — "
          "conference networks, traffic engineering — matches the filter too)")

    truth = [e for e in world.events if e.kind == SQUAT_DORMANT]
    print("\n=== Fig. 8: prefixes originated by awakened ASNs ===")
    for event in truth[:6]:
        lo = max(event.interval.start - 30, world.config.start_day)
        hi = min(event.interval.end + 30, world.config.end_day)
        series = [
            len(event.prefixes) if day in event.interval else 0
            for day in range(lo, hi + 1)
        ]
        factory = event.announcer
        print(f"\nAS{event.origin}  (upstream: AS{factory}, a known "
              "'hijack factory' pattern)")
        print(f"  window {to_iso(lo)} .. {to_iso(hi)}, "
              f"{len(event.prefixes)} prefixes at peak")
        print(f"  {sparkline(series)}")

    print("\n=== The compound-lens signature ===")
    by_asn = {c.asn: c for c in candidates}
    confirmed = [by_asn[e.origin] for e in truth if e.origin in by_asn]
    for candidate in confirmed[:6]:
        admin_days = candidate.admin_end - candidate.admin_start + 1
        print(f"AS{candidate.asn}: allocated {admin_days} days, "
              f"dormant {candidate.dormancy_days} days, then active only "
              f"{candidate.op_duration} days "
              f"({candidate.relative_duration:.1%} of the admin life)")

    malicious = [e for e in world.events if e.kind in MALICIOUS_KINDS]
    print(f"\nTotal malicious events in ground truth: {len(malicious)}")


if __name__ == "__main__":
    main()
