#!/usr/bin/env python3
"""Per-RIR longitudinal trends (§5, Fig. 4): the bird's-eye view.

Reproduces the macro findings: RIPE NCC overtakes ARIN earlier in the
operational dimension (2009 in the paper) than in the administrative
one (2012); a large and growing share of allocated ASNs never shows up
in BGP; and the registries reuse AS numbers at very different rates.

Run:  python examples/rir_trends.py
"""

from repro.core import (
    alive_bgp_counts_by_registry,
    alive_counts,
    alive_counts_by_registry,
    crossover_day,
    lives_per_asn_table,
)
from repro.simulation import WorldConfig, build_datasets
from repro.timeline import to_iso, year_of


def main() -> None:
    config = WorldConfig(seed=4, scale=0.03)
    bundle = build_datasets(config)
    start, end = config.start_day, config.end_day

    admin_series = alive_counts_by_registry(bundle.admin_lives, start, end)
    bgp_series = alive_bgp_counts_by_registry(
        bundle.admin_lives, bundle.op_lives, start, end
    )

    print("=== Alive ASNs on the last day (cf. Fig. 4 right edge) ===")
    print(f"  {'registry':10s} {'allocated':>10s} {'in BGP':>8s} {'gap':>6s}")
    for registry in sorted(admin_series):
        admin = admin_series[registry].final()
        bgp = bgp_series.get(registry)
        bgp_n = bgp.final() if bgp else 0
        print(f"  {registry:10s} {admin:10d} {bgp_n:8d} {admin - bgp_n:6d}")

    overall_admin = alive_counts(bundle.admin_lives, start, end)
    overall_bgp = alive_counts(bundle.op_lives, start, end)
    gap = overall_admin.final() - overall_bgp.final()
    print(f"\nOverall gap on {to_iso(end)}: {gap} allocated ASNs not in BGP "
          f"({gap / overall_admin.final():.0%}; paper: ~28%)")

    print("\n=== RIPE NCC vs ARIN crossover (cf. §5) ===")
    if "ripencc" in admin_series and "arin" in admin_series:
        admin_cross = crossover_day(admin_series["ripencc"], admin_series["arin"])
        bgp_cross = crossover_day(bgp_series["ripencc"], bgp_series["arin"])
        fmt = lambda d: f"{year_of(d)} ({to_iso(d)})" if d else "never"
        print(f"  administrative: RIPE NCC passes ARIN in {fmt(admin_cross)} "
              "(paper: 2012)")
        print(f"  operational:    RIPE NCC passes ARIN in {fmt(bgp_cross)} "
              "(paper: 2009)")
        if admin_cross and bgp_cross:
            print(f"  -> the operational lens sees the shift "
                  f"{(admin_cross - bgp_cross) / 365:.1f} years earlier")

    print("\n=== Re-allocation behavior (cf. Table 2, Adm.) ===")
    table = lives_per_asn_table(bundle.admin_lives, bundle.registry_of())
    print(f"  {'registry':10s} {'1 life':>8s} {'2 lives':>8s} {'>2':>6s}")
    for registry, row in table.items():
        print(f"  {registry:10s} {row['1']:8.1%} {row['2']:8.1%} "
              f"{row['>2']:6.1%}")
    print("  (paper: ARIN and RIPE NCC re-allocate significantly more)")


if __name__ == "__main__":
    main()
