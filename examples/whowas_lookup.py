#!/usr/bin/env python3
"""WhoWas: historical delegation queries (§6.3's investigation tool).

The paper used ARIN's WhoWas service to investigate short-lived unused
32-bit allocations and discovered that 86% of the organizations behind
them were handed 16-bit ASNs right afterwards — failed 32-bit
deployments.  This example runs the same investigation over a simulated
world, plus a couple of the everyday queries the service supports.

Run:  python examples/whowas_lookup.py
"""

from repro.rir import WhoWas
from repro.simulation import WorldConfig, build_datasets
from repro.timeline import to_iso


def main() -> None:
    bundle = build_datasets(WorldConfig(seed=17, scale=0.03))
    service = WhoWas(bundle.admin_lives)

    # 1. the §6.3 investigation: failed 32-bit deployments
    retries = service.find_32bit_retries(max_failed_duration=400,
                                         max_gap_days=365)
    print("=== Failed 32-bit deployments (§6.3) ===")
    print(f"{len(retries)} organizations returned a short-lived 32-bit ASN "
          "and got a 16-bit one soon after:")
    for finding in retries[:8]:
        print(f"  {finding.org_id}: AS{finding.failed_asn} lasted "
              f"{finding.failed_duration}d -> AS{finding.replacement_asn} "
              f"{finding.gap_days}d later")

    # 2. reuse chains: the same number, different owners
    print("\n=== ASN reuse chains (who held this number when?) ===")
    shown = 0
    for asn in service_asns_with_multiple_holders(service, bundle):
        chain = service.reuse_chain(asn)
        print(f"AS{asn}:")
        for org, start, end in chain:
            print(f"    {org or '(unknown)':18s} {to_iso(start)} .. {to_iso(end)}")
        shown += 1
        if shown == 3:
            break

    # 3. point-in-time holder lookup
    print("\n=== Point-in-time lookups ===")
    expired = service.expired_holdings()
    if expired:
        sample = expired[len(expired) // 2]
        mid = (sample.start + sample.end) // 2
        holder = service.holder_on(sample.asn, mid)
        print(f"Who held AS{sample.asn} on {to_iso(mid)}?")
        print(f"  -> {holder.describe()}")
        after = service.holder_on(sample.asn, sample.end + 50)
        print("And 50 days after that allocation expired?")
        print(f"  -> {after.describe() if after else 'nobody (deallocated)'}")


def service_asns_with_multiple_holders(service, bundle):
    for asn in sorted(bundle.admin_lives):
        if len({life.org_id for life in bundle.admin_lives[asn]}) > 1:
            yield asn


if __name__ == "__main__":
    main()
